//! μFAB-E: the active edge (§3.3–§3.5, §4.1).
//!
//! One [`UfabEdge`] runs per host (the SmartNIC program). It owns:
//!
//! * the [`Endpoint`] transport engine (per-pair message queues,
//!   reliability, delivery tracking);
//! * the hierarchical [`wfq`] packet scheduler — WFQ across tenants,
//!   round-robin across a tenant's pairs — pulled by NIC-idle events so
//!   the NIC queue stays shallow and scheduling decisions stay live;
//! * per-pair control state: candidate underlay paths, the two-stage
//!   admission window (§3.4), registration state at the switches, probe
//!   self-clocking (§4.1), violation counters, and migration freeze
//!   windows (§3.5) — stored struct-of-arrays in [`pairs`] so the
//!   per-tick control walk is a linear scan over dense columns;
//! * the GP token loops (Appendix E) run every token update period for
//!   both directions (sender assignment, receiver admission).
//!
//! The control loop per pair: a **probe** carries the pair's (φ, w) along
//! its underlay path; each μFAB-C adds its link's Φ_l/W_l/tx_l/q_l/C_l;
//! the destination returns a **response** with its admitted token; on
//! response the source recomputes the admission window (Eqn 3), checks the
//! guarantee, and — after 5 consecutive violated RTTs outside the freeze
//! window — migrates to a qualified candidate path.

mod pairs;
pub mod rate;
pub mod wfq;

use crate::config::UfabConfig;
use crate::endpoint::{AppMsg, Endpoint};
use crate::fabric::FabricSpec;
use crate::tokens::{token_admission, token_assignment, PairTokens};
use metrics::recorder::SharedRecorder;
use netsim::agent::{EdgeAgent, EdgeCtx};
use netsim::packet::{Packet, PacketKind};
use netsim::{Inject, NodeId, PairId, PortNo, Route, Time, VmId, ACK_SIZE, DATA_OVERHEAD};
use obs::{Category as ObsCategory, Event as ObsEvent, ObsHandle};
use pairs::{PairCold, PairTable, PathInfo, PathTelem, PendingFinish, ProbeOut, Registration};
use rand::Rng;
use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;
use telemetry::{wire, FinishFrame, ProbeFrame};
use topology::Topo;
use wfq::{weight_class, WfqScheduler};

/// Timer kind: the periodic control tick (GP, timeouts, probing upkeep).
const TICK: u64 = 1;

/// Counters exported for experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeStats {
    /// Probes sent (all kinds).
    pub probes_sent: u64,
    /// Responses received.
    pub responses: u64,
    /// Path migrations performed.
    pub migrations: u64,
    /// Probe losses detected by timeout.
    pub probe_timeouts: u64,
    /// Finish probes sent.
    pub finishes: u64,
    /// Agent restarts (fault injection): volatile control state rebuilt.
    pub restarts: u64,
    /// Responses discarded because their INT stamps failed sanity checks.
    pub corrupt_responses: u64,
}

/// The μFAB-E edge agent.
pub struct UfabEdge {
    cfg: UfabConfig,
    topo: Rc<Topo>,
    fabric: Rc<FabricSpec>,
    /// The transport engine.
    pub ep: Endpoint,
    host: NodeId,
    mtu: u32,
    pairs: PairTable,
    /// Receiver side: sender demand seen per incoming pair.
    rx_demand: HashMap<PairId, (f64, Time)>,
    /// Receiver side: admitted tokens per incoming pair.
    rx_admitted: HashMap<PairId, f64>,
    wfq: WfqScheduler,
    routes_back: HashMap<NodeId, Route>,
    reverse_cache: HashMap<(NodeId, Route), Route>,
    /// Round-robin cursor for the budgeted demand-less keep-alive probes.
    keepalive_cursor: u64,
    /// Reused buffer for the keep-alive candidate scan (no per-tick alloc).
    keepalive_scratch: Vec<PairId>,
    /// Counters.
    pub stats: EdgeStats,
    obs: ObsHandle,
}

impl UfabEdge {
    /// Create the agent for `host`.
    pub fn new(
        cfg: UfabConfig,
        topo: Rc<Topo>,
        fabric: Rc<FabricSpec>,
        recorder: SharedRecorder,
        host: NodeId,
    ) -> Self {
        let mtu = topo.mtu;
        let ep = Endpoint::new(host, Rc::clone(&fabric), recorder, mtu, 4 * cfg.rtt_scale);
        Self {
            cfg,
            topo,
            fabric,
            ep,
            host,
            mtu,
            pairs: PairTable::default(),
            rx_demand: HashMap::new(),
            rx_admitted: HashMap::new(),
            wfq: WfqScheduler::new(),
            routes_back: HashMap::new(),
            reverse_cache: HashMap::new(),
            keepalive_cursor: 0,
            keepalive_scratch: Vec::new(),
            stats: EdgeStats::default(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attach a flight-recorder handle (shared with the simulator's) so
    /// window updates and migrations leave a trace.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Submit a message directly (tests / drivers with agent access).
    /// Inside a simulation prefer `sim.inject(host, msg)`.
    pub fn submit(&mut self, ctx: &mut EdgeCtx, msg: AppMsg) {
        let pair = msg.pair;
        self.ep.submit(ctx.now, msg);
        self.activate_pair(ctx, pair);
        self.pump(ctx);
    }

    /// Current admission window of a pair in bytes (tests/experiments).
    pub fn window_of(&self, pair: PairId) -> Option<f64> {
        self.pairs.slot(pair).map(|s| self.pairs.window[s])
    }

    /// Every pair this edge currently manages (invariant checkers).
    pub fn pair_ids(&self) -> Vec<PairId> {
        self.pair_iter().collect()
    }

    /// Every pair this edge manages, in ascending id order, without
    /// allocating — the form the periodic invariant audits walk.
    pub fn pair_iter(&self) -> impl Iterator<Item = PairId> + '_ {
        self.pairs.ids_sorted()
    }

    /// Link MTU this edge segments messages at.
    pub fn mtu(&self) -> u32 {
        self.mtu
    }

    /// Index of the pair's current candidate path (tests/experiments).
    pub fn current_path_of(&self, pair: PairId) -> Option<usize> {
        self.pairs.slot(pair).map(|s| self.pairs.cold[s].cur)
    }

    /// The pair's current route (tests/experiments).
    pub fn route_of(&self, pair: PairId) -> Option<Vec<PortNo>> {
        self.pairs
            .slot(pair)
            .map(|s| self.pairs.cur_path(s).route.clone())
    }

    /// Effective (min of sender/receiver) token of a pair.
    pub fn phi_of(&self, pair: PairId) -> Option<f64> {
        self.pairs.slot(pair).map(|s| self.pairs.phi_eff(s))
    }

    /// Claimed (Eqn 3) window of a pair (tests/experiments).
    pub fn claim_of(&self, pair: PairId) -> Option<f64> {
        self.pairs.slot(pair).map(|s| self.pairs.w_claim[s])
    }

    /// §3.3 qualification signal for the fabric manager: `Some(true)`
    /// when the freshest telemetry for the pair's current path shows
    /// every hop qualified under the target utilization, `Some(false)`
    /// when it does not, `None` before any telemetry has arrived.
    pub fn pair_qualified(&self, pair: PairId) -> Option<bool> {
        let s = self.pairs.slot(pair)?;
        let c = &self.pairs.cold[s];
        let t = &c.telem[c.cur];
        if t.hops.is_empty() {
            return None;
        }
        Some(rate::path_qualified(
            &t.hops,
            0.0,
            self.fabric.bu_bps,
            self.cfg.target_utilization,
        ))
    }

    /// Whether a pair is active (tests/experiments).
    pub fn is_active(&self, pair: PairId) -> Option<bool> {
        self.pairs.slot(pair).map(|s| self.pairs.active[s])
    }

    /// Probe/response/migration counters snapshot.
    pub fn edge_stats(&self) -> EdgeStats {
        self.stats
    }

    fn min_window(&self) -> f64 {
        self.cfg.min_window_mtus * (self.mtu - DATA_OVERHEAD) as f64
    }

    /// Route for a reply to `pkt`: retrace the packet's own source route
    /// (it provably works — the packet just arrived on it); fall back to
    /// a shortest path for unrouted (ECMP) packets. Returns the inline
    /// [`Route`] directly — the hit path is a memcpy, no allocation.
    fn reply_route(&mut self, pkt: &Packet) -> Route {
        if pkt.route.is_empty() {
            return self.route_back(pkt.src);
        }
        let key = (pkt.src, pkt.route.clone());
        if let Some(r) = self.reverse_cache.get(&key) {
            return r.clone();
        }
        let rev: Route = self.topo.reverse_route(pkt.src, &pkt.route).into();
        if self.reverse_cache.len() > 4096 {
            self.reverse_cache.clear();
        }
        self.reverse_cache.insert(key, rev.clone());
        rev
    }

    fn route_back(&mut self, dst: NodeId) -> Route {
        if let Some(r) = self.routes_back.get(&dst) {
            return r.clone();
        }
        let paths = self.topo.paths(self.host, dst, 1);
        let route: Route = paths
            .first()
            .unwrap_or_else(|| panic!("no path from {} to {}", self.host, dst))
            .route()
            .into();
        self.routes_back.insert(dst, route.clone());
        route
    }

    fn activate_pair(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let floor = self.min_window();
        let eta = self.cfg.target_utilization;
        let bu = self.fabric.bu_bps;
        if let Some(s) = self.pairs.slot(pair) {
            if !self.pairs.active[s] {
                self.pairs.active[s] = true;
                // §3.4 Scenario-2 re-entry: bootstrap from the pair's
                // *current share* r·T (Eqn 1 over the freshest telemetry),
                // never below the guarantee BDP.
                let t_s = self.pairs.cur_base_rtt[s] as f64 / 1e9;
                let phi = self.pairs.phi_eff(s);
                let guar = phi * bu;
                let r = {
                    let c = &self.pairs.cold[s];
                    if c.telem[c.cur].hops.is_empty() {
                        guar
                    } else {
                        rate::path_share_rate(phi, &c.telem[c.cur].hops, eta).max(guar)
                    }
                };
                if self.cfg.bounded_latency {
                    let b = rate::bootstrap_window(r, t_s).max(floor);
                    self.pairs.boot[s] = Some(b);
                    self.pairs.window[s] = b;
                }
                self.pairs.w_claim[s] =
                    self.pairs.window[s].max(self.pairs.w_claim[s].min(8.0 * self.pairs.window[s]));
                self.wfq.add_pair(self.pairs.cold[s].tenant, pair);
                self.register_on_current(ctx, pair);
            }
            return;
        }
        // Fresh pair: build candidates.
        let spec = self.fabric.pair(pair);
        let src_vm = spec.src;
        let tenant = self.fabric.pair_tenant(pair);
        let dst_host = self.fabric.pair_dst_host(pair);
        assert_eq!(self.fabric.pair_src_host(pair), self.host, "pair not ours");
        assert_ne!(dst_host, self.host, "same-host VM pairs need no fabric");
        let all = self.topo.paths(self.host, dst_host, self.cfg.path_enum_cap);
        assert!(!all.is_empty(), "no path {} -> {}", self.host, dst_host);
        // Randomly sample k candidates (§3.5).
        let mut idxs: Vec<usize> = (0..all.len()).collect();
        for i in (1..idxs.len()).rev() {
            let j = ctx.rng.gen_range(0..=i);
            idxs.swap(i, j);
        }
        idxs.truncate(self.cfg.candidate_paths.max(1));
        let candidates: Vec<PathInfo> = idxs
            .iter()
            .map(|&i| {
                let p = &all[i];
                PathInfo {
                    route: p.route(),
                    base_rtt: self.topo.base_rtt_path(p),
                    n_switch_hops: p.n_links().saturating_sub(1),
                }
            })
            .collect();
        let cur = ctx.rng.gen_range(0..candidates.len());
        let n_cand = candidates.len();
        // Initial sender token: quick split of the VM hose across its
        // currently-active pairs (refined by the GP tick).
        let vm_tokens = self.fabric.vm_tokens(src_vm);
        let n_active = 1 + self
            .pairs
            .cold
            .iter()
            .zip(self.pairs.active.iter())
            .filter(|(c, &a)| c.src_vm == src_vm && a)
            .count();
        let phi_s = vm_tokens / n_active as f64;
        let t_s = candidates[cur].base_rtt as f64 / 1e9;
        let guar = phi_s * self.fabric.bu_bps;
        let boot = if self.cfg.bounded_latency {
            Some(rate::bootstrap_window(guar, t_s).max(self.min_window()))
        } else {
            None
        };
        let window = boot
            .unwrap_or_else(|| {
                // μFAB′ starts from one BDP of the guarantee as well, but
                // immediately tracks Eqn 3 afterwards.
                rate::bootstrap_window(guar, t_s).max(self.min_window())
            })
            .max(self.min_window());
        let cold = PairCold {
            tenant,
            src_vm,
            dst_host,
            candidates,
            telem: vec![PathTelem::default(); n_cand],
            cur,
            registered: None,
            reg_epoch: 0,
            probe_seq: 0,
            cand_probes: HashMap::new(),
            better_since: None,
            pending_finish: Vec::new(),
        };
        self.pairs.insert(pair, cold, phi_s, window, boot, ctx.now);
        self.wfq
            .set_tenant(tenant, weight_class(vm_tokens, self.cfg.wfq_levels));
        self.wfq.add_pair(tenant, pair);
        self.register_on_current(ctx, pair);
        self.probe_candidates(ctx, pair);
    }

    /// Send the registering probe on the current path.
    fn register_on_current(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        let phi = self.pairs.phi_eff(s);
        let w = self.pairs.w_claim[s];
        let cur = self.pairs.cold[s].cur;
        self.pairs.cold[s].registered = Some(Registration { path: cur, phi, w });
        self.send_probe(ctx, pair, cur, true);
    }

    /// Probe every non-current candidate read-only (registration-free).
    fn probe_candidates(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        let n = self.pairs.cold[s].candidates.len();
        for i in 0..n {
            if self.pairs.cold[s].cur != i {
                self.send_probe(ctx, pair, i, false);
            }
        }
        self.pairs.last_alt_probe[s] = ctx.now;
    }

    /// Emit one probe on candidate `path_idx`. `registering` sends full
    /// values for switch registration; otherwise the probe carries deltas
    /// on the current path and nothing (pure read) on candidates.
    fn send_probe(&mut self, ctx: &mut EdgeCtx, pair: PairId, path_idx: usize, registering: bool) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        let seq = self.pairs.cold[s].probe_seq;
        self.pairs.cold[s].probe_seq += 1;
        let phi = self.pairs.phi_eff(s);
        let w = self.pairs.w_claim[s];
        let mut frame = ProbeFrame::probe(pair.raw(), seq, phi, w, ctx.now);
        let is_cur = path_idx == self.pairs.cold[s].cur;
        if registering {
            frame.registering = true;
            self.pairs.cold[s].reg_epoch += 1;
            frame.epoch = self.pairs.cold[s].reg_epoch;
            self.pairs.cold[s].registered = Some(Registration {
                path: path_idx,
                phi,
                w,
            });
        } else if is_cur {
            frame.epoch = self.pairs.cold[s].reg_epoch;
            if let Some(reg) = &mut self.pairs.cold[s].registered {
                frame.phi_delta = phi - reg.phi;
                frame.w_delta = w - reg.w;
                reg.phi = phi;
                reg.w = w;
            }
        }
        let out = ProbeOut {
            seq,
            path: path_idx,
            sent_at: ctx.now,
        };
        if is_cur {
            self.pairs.outstanding[s] = Some(out);
            self.pairs.bytes_since_probe[s] = 0;
            self.pairs.last_probe_sent[s] = ctx.now;
        } else {
            self.pairs.cold[s].cand_probes.insert(seq, out);
        }
        let c = &self.pairs.cold[s];
        let info = &c.candidates[path_idx];
        let size = wire::probe_packet_bytes(info.n_switch_hops, info.route.len()) as u32;
        let pkt = Packet {
            src: self.host,
            dst: c.dst_host,
            pair,
            tenant: c.tenant,
            size,
            kind: PacketKind::Probe(frame),
            route: Route::from(info.route.as_slice()),
            hop: 0,
            ecn: false,
            max_util: 0.0,
            sent_at: ctx.now,
        };
        self.stats.probes_sent += 1;
        ctx.send(pkt);
    }

    /// Self-clocked probing (§4.1): after a response, the next probe goes
    /// out once L_m data bytes have been sent.
    fn maybe_probe(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        if !self.pairs.active[s] || self.pairs.outstanding[s].is_some() {
            return;
        }
        match self.cfg.probe_period_rtts {
            None => {
                if self.pairs.bytes_since_probe[s] >= self.cfg.probe_lm_bytes {
                    let cur = self.pairs.cold[s].cur;
                    self.send_probe(ctx, pair, cur, false);
                }
            }
            Some(n) => {
                let period = n * self.pairs.cur_base_rtt[s];
                if ctx.now.saturating_sub(self.pairs.last_probe_sent[s]) >= period {
                    let cur = self.pairs.cold[s].cur;
                    self.send_probe(ctx, pair, cur, false);
                }
            }
        }
    }

    /// Bounds check on INT stamps before they are allowed to drive rate
    /// control. A bit-flipped register read (chaos `IntCorrupt`, or a real
    /// ASIC mis-read) can put NaN/∞/absurd magnitudes into a hop; Eqn 3
    /// would then collapse or explode the window. Out-of-band values are
    /// rejected wholesale — small in-band perturbations are left to the
    /// per-hop smoothing, which absorbs them like meter noise.
    fn hops_sane(hops: &[telemetry::HopInfo]) -> bool {
        hops.iter().all(|h| {
            h.phi_total.is_finite()
                && (0.0..1e9).contains(&h.phi_total)
                && h.w_total.is_finite()
                && (0.0..1e15).contains(&h.w_total)
                && h.tx_bps.is_finite()
                && h.tx_bps >= 0.0
                && h.cap_bps > 0
                && h.cap_bps < 1_000_000_000_000_000
                && h.tx_bps <= 16.0 * h.cap_bps as f64
                && h.q_bytes < (1 << 40)
        })
    }

    fn handle_response(&mut self, ctx: &mut EdgeCtx, frame: ProbeFrame) {
        let pair = PairId(frame.pair);
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        self.stats.responses += 1;
        if let Some(rx_phi) = frame.rx_phi {
            self.pairs.phi_r[s] = rx_phi;
        }
        // Which path does this telemetry describe?
        let path_idx = if self.pairs.outstanding[s].map(|o| o.seq) == Some(frame.seq) {
            let o = self.pairs.outstanding[s].take().expect("checked");
            self.pairs.probe_losses[s] = 0;
            let sample = ctx.now.saturating_sub(o.sent_at);
            self.pairs.srtt[s] = if self.pairs.srtt[s] == 0 {
                sample
            } else {
                (3 * self.pairs.srtt[s] + sample) / 4
            };
            o.path
        } else if let Some(o) = self.pairs.cold[s].cand_probes.remove(&frame.seq) {
            o.path
        } else {
            return; // stale / duplicate
        };
        // Corrupt telemetry never reaches rate control (the srtt update
        // above is kept: probe *timing* is genuine even when stamps are
        // not). The next self-clocked probe re-samples the path.
        if frame.kind != telemetry::ProbeKind::Failure && !Self::hops_sane(&frame.hops) {
            self.stats.corrupt_responses += 1;
            return;
        }
        // Blend the volatile per-hop signals (tx rate, queue) into the
        // previous snapshot: Eqn 3 takes a min across hops, and a min of
        // independently-noisy terms is biased low — smoothing each hop
        // before the min removes most of that bias (the register-backed
        // Φ_l/W_l are low-noise and taken fresh).
        let prev = std::mem::take(&mut self.pairs.cold[s].telem[path_idx]);
        let mut hops = frame.hops.clone();
        if prev.hops.len() == hops.len() {
            for (h, p) in hops.iter_mut().zip(prev.hops.iter()) {
                if h.node == p.node && h.port == p.port {
                    h.tx_bps = 0.5 * h.tx_bps + 0.5 * p.tx_bps;
                    h.q_bytes = ((h.q_bytes + p.q_bytes) / 2).min(h.q_bytes.max(p.q_bytes));
                }
            }
        }
        // A type-4 failure notification (Appendix G): the probe hit a dead
        // link. Mark the path's telemetry stale and migrate right away —
        // no need to wait out the probe-loss timeout.
        if frame.kind == telemetry::ProbeKind::Failure {
            self.pairs.cold[s].telem[path_idx] = PathTelem::default();
            if path_idx == self.pairs.cold[s].cur {
                self.pairs.violations[s] = self.cfg.violation_rtts;
                self.stats.probe_timeouts += 1;
                self.probe_candidates(ctx, pair);
                self.try_migrate(ctx, pair, false, true);
            }
            return;
        }
        self.pairs.cold[s].telem[path_idx] = PathTelem { hops, at: ctx.now };
        if path_idx != self.pairs.cold[s].cur {
            return;
        }
        // ---- Rate control on the current path (Eqn 3 + two-stage) ----
        let eta = self.cfg.target_utilization;
        let t_s = self.pairs.cur_base_rtt[s] as f64 / 1e9;
        let phi = self.pairs.phi_eff(s);
        let w3 = rate::path_window(
            phi,
            self.pairs.w_claim[s],
            &self.pairs.cold[s].telem[path_idx].hops,
            t_s,
            eta,
            self.mtu,
        );
        let floor = self.cfg.min_window_mtus * (self.mtu - DATA_OVERHEAD) as f64;
        // The *claim* tracks Eqn 3: an under-demanded pair keeps claiming
        // its proportional share so W_l stays honest and the
        // C_l·T/(tx_l·T+q_l) multiplier can drive work conservation. The
        // update is smoothed (gain per response) because responses arrive
        // every L_m bytes — far more often than once per RTT — and an
        // unsmoothed multiplicative update under bursty-meter noise
        // equilibrates below target utilisation (Appendix C's stability
        // argument: adaptation must be scaled to the RTT).
        let gain = self.cfg.claim_gain;
        self.pairs.w_claim[s] =
            (self.pairs.w_claim[s] + gain * (w3 - self.pairs.w_claim[s])).max(floor);
        let r_share = rate::path_share_rate(phi, &self.pairs.cold[s].telem[path_idx].hops, eta);
        let measured_tx = self.ep.tx_rate_bps(ctx.now, pair);
        let window_limited = self.ep.has_backlog(pair);
        if self.cfg.bounded_latency {
            match self.pairs.boot[s] {
                Some(boot) => {
                    if window_limited {
                        // Stage-1 additive increase, one share-BDP per RTT.
                        let next = boot
                            + rate::bootstrap_increment(
                                phi,
                                &self.pairs.cold[s].telem[path_idx].hops,
                                t_s,
                                eta,
                            );
                        if next >= self.pairs.w_claim[s] {
                            self.pairs.boot[s] = None;
                        } else {
                            self.pairs.boot[s] = Some(next);
                        }
                    }
                    // Under-demanded pairs hold at their bootstrap level.
                }
                None => {
                    // §3.4 Scenario-2: a pair sending below its share must
                    // not keep an armed full-size window — re-enter the
                    // ramp from r·T so a sudden burst stays bounded.
                    if !window_limited && measured_tx < 0.9 * r_share {
                        self.pairs.boot[s] = Some(rate::bootstrap_window(r_share, t_s).max(floor));
                    }
                }
            }
            self.pairs.window[s] = self.pairs.boot[s]
                .unwrap_or(self.pairs.w_claim[s])
                .min(self.pairs.w_claim[s])
                .max(floor);
        } else {
            self.pairs.window[s] = self.pairs.w_claim[s];
        }
        // Eqn 1 is a *lower bound*: the pair may always keep r·T inflight
        // on a qualified path, whatever the claim dynamics say.
        if rate::path_qualified(
            &self.pairs.cold[s].telem[path_idx].hops,
            0.0,
            self.fabric.bu_bps,
            eta,
        ) {
            let r_window = rate::bootstrap_window(r_share, t_s);
            self.pairs.window[s] = self.pairs.window[s].max(r_window);
            self.pairs.w_claim[s] = self.pairs.w_claim[s].max(r_window);
        }
        {
            let (window, phi_r) = (self.pairs.window[s], self.pairs.phi_r[s]);
            let edge = self.host.raw();
            self.obs
                .rec(ObsCategory::Window, ctx.now, || ObsEvent::Window {
                    edge,
                    pair: pair.raw(),
                    window,
                    phi_s: phi,
                    phi_r,
                });
        }
        // ---- Guarantee violation bookkeeping (§3.5 trigger i) ----
        let bu = self.fabric.bu_bps;
        let guar = phi * bu;
        let unqualified =
            !rate::path_qualified(&self.pairs.cold[s].telem[path_idx].hops, 0.0, bu, eta);
        let has_demand = self.ep.has_backlog(pair) || self.ep.inflight(pair) > 0;
        let measured = self.ep.delivered_rate_bps(ctx.now, pair);
        if has_demand && guar > 0.0 && (measured < 0.85 * guar || unqualified) {
            self.pairs.violations[s] += 1;
        } else {
            self.pairs.violations[s] = 0;
        }
        // An explicitly-unqualified path (C_l < Φ_l·B_u) provably cannot
        // serve anyone's guarantee (§3.3) — two consecutive sightings are
        // enough to act, while measured-rate violations keep the cautious
        // 5-RTT hold of §3.5.
        if unqualified {
            self.pairs.unqualified[s] += 1;
        } else {
            self.pairs.unqualified[s] = 0;
        }
        // Disqualification alone is not actionable (the placement may be
        // hose-infeasible and everyone still gets a proportional share);
        // it only accelerates an actual measured violation.
        let migrate_violation = (self.pairs.violations[s] >= self.cfg.violation_rtts
            || (self.pairs.unqualified[s] >= 2 && self.pairs.violations[s] >= 2))
            && ctx.now >= self.pairs.freeze_until[s];
        let sustained = self.pairs.violations[s] >= self.cfg.violation_rtts;
        // ---- Work-conservation trigger (ii): persistently better path --
        let cur_potential =
            rate::path_potential_rate(phi, &self.pairs.cold[s].telem[path_idx].hops, eta);
        let fresh_limit = 20 * self.pairs.cur_base_rtt[s];
        let mut best_alt: Option<(usize, f64)> = None;
        {
            let c = &self.pairs.cold[s];
            for (i, t) in c.telem.iter().enumerate() {
                if i == c.cur || t.hops.is_empty() {
                    continue;
                }
                if ctx.now.saturating_sub(t.at) > fresh_limit {
                    continue;
                }
                if !rate::path_qualified(&t.hops, phi, bu, eta) {
                    continue;
                }
                let p = rate::path_potential_rate(phi, &t.hops, eta);
                if best_alt.map(|(_, bp)| p > bp).unwrap_or(true) {
                    best_alt = Some((i, p));
                }
            }
        }
        let mut migrate_wc = false;
        if let Some((_, alt_p)) = best_alt {
            if alt_p > 1.25 * cur_potential && has_demand {
                let since = *self.pairs.cold[s].better_since.get_or_insert(ctx.now);
                if ctx.now.saturating_sub(since) >= self.cfg.better_path_hold
                    && ctx.now >= self.pairs.freeze_until[s]
                {
                    migrate_wc = true;
                }
            } else {
                self.pairs.cold[s].better_since = None;
            }
        } else {
            self.pairs.cold[s].better_since = None;
        }
        if migrate_violation || migrate_wc {
            self.try_migrate(ctx, pair, migrate_wc && !migrate_violation, sustained);
        }
        self.pump(ctx);
    }

    /// Pick a qualified candidate and migrate (§3.5). For the
    /// work-conservation trigger only the best-R path is considered; for
    /// violations we prefer minimum subscription with some randomness.
    fn try_migrate(
        &mut self,
        ctx: &mut EdgeCtx,
        pair: PairId,
        work_conservation: bool,
        sustained: bool,
    ) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        let eta = self.cfg.target_utilization;
        let bu = self.fabric.bu_bps;
        let phi = self.pairs.phi_eff(s);
        let fresh_limit = 20 * self.pairs.cur_base_rtt[s];
        let mut qualified: Vec<(usize, f64, f64)> = Vec::new(); // (idx, subscription, potential)
        let mut fresh: Vec<(usize, f64)> = Vec::new(); // (idx, subscription)
        let cur_sub = {
            let c = &self.pairs.cold[s];
            for (i, t) in c.telem.iter().enumerate() {
                if i == c.cur || t.hops.is_empty() {
                    continue;
                }
                if ctx.now.saturating_sub(t.at) > fresh_limit {
                    continue;
                }
                let sub = rate::path_subscription(&t.hops, phi, bu, eta);
                fresh.push((i, sub));
                if rate::path_qualified(&t.hops, phi, bu, eta) {
                    qualified.push((i, sub, rate::path_potential_rate(phi, &t.hops, eta)));
                }
            }
            if c.telem[c.cur].hops.is_empty() {
                f64::INFINITY
            } else {
                rate::path_subscription(&c.telem[c.cur].hops, 0.0, bu, eta)
            }
        };
        if qualified.is_empty() {
            // No qualified candidate. §3.6: over-subscribed placements are
            // "digested by the headroom and migration due to bandwidth
            // dissatisfaction" — when the current path is itself
            // disqualified, descending to a clearly less-subscribed path
            // improves the global placement even if that path is not yet
            // qualified (another pair will move off it next).
            if !work_conservation && sustained && cur_sub > 1.05 {
                if let Some(&(best, best_sub)) = fresh
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN"))
                {
                    if best_sub < 0.85 * cur_sub {
                        self.do_migrate(ctx, pair, best);
                        // Descents between over-subscribed paths are prone
                        // to ping-pong; hold them back much longer.
                        let hold = self.pairs.freeze_until[s].saturating_sub(ctx.now);
                        self.pairs.freeze_until[s] = ctx.now + 4 * hold.max(1);
                        return;
                    }
                }
            }
            // Otherwise: widen the search — replace one random non-current
            // candidate with a fresh path sample, then re-probe.
            self.resample_candidate(ctx, pair);
            self.probe_candidates(ctx, pair);
            return;
        }
        let new_idx = if work_conservation {
            qualified
                .iter()
                .max_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN"))
                .expect("non-empty")
                .0
        } else {
            // Random with preference to minimum subscription (§3.5).
            let min = qualified
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN"))
                .expect("non-empty")
                .0;
            if ctx.rng.gen_bool(0.75) {
                min
            } else {
                qualified[ctx.rng.gen_range(0..qualified.len())].0
            }
        };
        self.do_migrate(ctx, pair, new_idx);
    }

    /// Swap one random non-current candidate for a path not currently in
    /// the candidate set (keeps the §3.5 random-subset search moving when
    /// every sampled candidate is disqualified).
    fn resample_candidate(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        let dst_host = self.pairs.cold[s].dst_host;
        let all = self.topo.paths(self.host, dst_host, self.cfg.path_enum_cap);
        if all.len() <= self.pairs.cold[s].candidates.len() {
            return; // nothing new to draw from
        }
        let (n_cand, cur, fresh_idx) = {
            let c = &self.pairs.cold[s];
            let existing: Vec<Vec<PortNo>> =
                c.candidates.iter().map(|cand| cand.route.clone()).collect();
            let fresh_idx: Vec<usize> = (0..all.len())
                .filter(|&i| !existing.contains(&all[i].route()))
                .collect();
            (c.candidates.len(), c.cur, fresh_idx)
        };
        if fresh_idx.is_empty() || n_cand < 2 {
            return;
        }
        let new_path = &all[fresh_idx[ctx.rng.gen_range(0..fresh_idx.len())]];
        // Replace a random candidate that is not the current one.
        let mut victim = ctx.rng.gen_range(0..n_cand);
        if victim == cur {
            victim = (victim + 1) % n_cand;
        }
        let info = PathInfo {
            route: new_path.route(),
            base_rtt: self.topo.base_rtt_path(new_path),
            n_switch_hops: new_path.n_links().saturating_sub(1),
        };
        let c = &mut self.pairs.cold[s];
        c.candidates[victim] = info;
        c.telem[victim] = PathTelem::default();
    }

    fn do_migrate(&mut self, ctx: &mut EdgeCtx, pair: PairId, new_idx: usize) {
        let floor = self.min_window();
        let eta = self.cfg.target_utilization;
        let bu = self.fabric.bu_bps;
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        if new_idx == self.pairs.cold[s].cur {
            return;
        }
        self.stats.migrations += 1;
        self.ep.recorder().borrow_mut().path_migrations += 1;
        {
            let (from, to) = (self.pairs.cold[s].cur as u8, new_idx as u8);
            let edge = self.host.raw();
            self.obs
                .rec(ObsCategory::Migration, ctx.now, || ObsEvent::Migration {
                    edge,
                    pair: pair.raw(),
                    from,
                    to,
                });
        }
        // Deregister from the old path.
        if let Some(reg) = self.pairs.cold[s].registered.take() {
            let c = &mut self.pairs.cold[s];
            let old = &c.candidates[reg.path];
            let pf = PendingFinish {
                route: old.route.clone(),
                n_switch_hops: old.n_switch_hops,
                phi: reg.phi,
                w: reg.w,
                seq: c.probe_seq,
                epoch: c.reg_epoch,
                retries: 0,
                next_retry: ctx.now,
            };
            c.pending_finish.push(pf);
            c.probe_seq += 1;
        }
        self.pairs.set_cur(s, new_idx);
        self.pairs.violations[s] = 0;
        self.pairs.unqualified[s] = 0;
        self.pairs.outstanding[s] = None;
        self.pairs.cold[s].better_since = None;
        let base = self.pairs.cur_base_rtt[s];
        let n = ctx.rng.gen_range(1..=self.cfg.freeze_rtts_max.max(1));
        self.pairs.freeze_until[s] = ctx.now + n * base;
        if self.cfg.reorder_free {
            self.pairs.data_paused_until[s] = ctx.now + base;
        }
        // Scenario-2 bootstrap on the new path: start from the
        // proportional share the new path's telemetry promises.
        let t_s = base as f64 / 1e9;
        let phi = self.pairs.phi_eff(s);
        let r = {
            let hops = &self.pairs.cold[s].telem[new_idx].hops;
            if hops.is_empty() {
                phi * bu
            } else {
                rate::path_share_rate(phi, hops, eta)
            }
        };
        let w0 = rate::bootstrap_window(r, t_s).max(floor);
        if self.cfg.bounded_latency {
            self.pairs.boot[s] = Some(w0);
        }
        self.pairs.window[s] = w0;
        self.pairs.w_claim[s] = w0;
        self.register_on_current(ctx, pair);
        self.flush_finish(ctx, pair);
    }

    fn flush_finish(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        if self.pairs.cold[s].pending_finish.is_empty() {
            return;
        }
        let retry_after = 4 * self.pairs.cur_base_rtt[s];
        let c = &mut self.pairs.cold[s];
        // Drop finishes that exhausted their retries (dead path; the
        // switch idle-cleanup reclaims those registrations).
        c.pending_finish.retain(|pf| pf.retries <= 10);
        let mut to_send = Vec::new();
        for pf in c.pending_finish.iter_mut() {
            if ctx.now < pf.next_retry {
                continue;
            }
            pf.retries += 1;
            pf.next_retry = ctx.now + retry_after;
            let mut frame = FinishFrame::new(pair.raw(), pf.seq, pf.phi, pf.w);
            frame.epoch = pf.epoch;
            frame.forward = true;
            let size = wire::probe_packet_bytes(pf.n_switch_hops, pf.route.len()) as u32;
            to_send.push((frame, size, Route::from(pf.route.as_slice())));
        }
        let dst = c.dst_host;
        let tenant = c.tenant;
        for (frame, size, route) in to_send {
            self.stats.finishes += 1;
            ctx.send(Packet {
                src: self.host,
                dst,
                pair,
                tenant,
                size,
                kind: PacketKind::Finish(frame),
                route,
                hop: 0,
                ecn: false,
                max_util: 0.0,
                sent_at: ctx.now,
            });
        }
    }

    /// GP sender side: split each local VM's hose across its active pairs.
    fn gp_sender_tick(&mut self, now: Time) {
        let mut by_vm: HashMap<VmId, Vec<u32>> = HashMap::new();
        // Walking slots in PairId order keeps each VM's list sorted.
        for s in self.pairs.slots_sorted() {
            if self.pairs.active[s] {
                by_vm
                    .entry(self.pairs.cold[s].src_vm)
                    .or_default()
                    .push(s as u32);
            }
        }
        for (vm, slots) in by_vm {
            let phi_vm = self.fabric.vm_tokens(vm);
            let mut views: Vec<PairTokens> = slots
                .iter()
                .map(|&s| {
                    let tx = self.ep.tx_rate_bps(now, self.pairs.id(s as usize));
                    PairTokens::new(tx, self.pairs.phi_r[s as usize])
                })
                .collect();
            token_assignment(phi_vm, self.fabric.bu_bps, &mut views);
            for (&s, v) in slots.iter().zip(&views) {
                self.pairs.phi_s[s as usize] = v.phi_s;
            }
        }
    }

    /// GP receiver side: admit incoming demands per destination VM.
    fn gp_receiver_tick(&mut self, now: Time) {
        let stale = 8 * self.cfg.token_update_period;
        self.rx_demand
            .retain(|_, (_, at)| now.saturating_sub(*at) <= stale.max(1));
        let mut by_vm: HashMap<VmId, Vec<(PairId, f64)>> = HashMap::new();
        for (&pair, &(phi_s, _)) in &self.rx_demand {
            let dst_vm = self.fabric.pair(pair).dst;
            by_vm.entry(dst_vm).or_default().push((pair, phi_s));
        }
        self.rx_admitted.clear();
        for (vm, mut entries) in by_vm {
            entries.sort_by_key(|(p, _)| *p);
            let phi_vm = self.fabric.vm_tokens(vm);
            let demands: Vec<f64> = entries.iter().map(|(_, d)| *d).collect();
            let admitted = token_admission(phi_vm, &demands);
            for ((pair, _), adm) in entries.iter().zip(admitted) {
                self.rx_admitted.insert(*pair, adm);
            }
        }
    }

    /// The periodic control tick.
    fn tick(&mut self, ctx: &mut EdgeCtx) {
        let now = ctx.now;
        self.gp_sender_tick(now);
        self.gp_receiver_tick(now);
        // The walk follows the table's sorted order (ascending PairId) so
        // probe/timeout/migration processing order is independent of hash
        // state — keeps same-seed runs byte-identical across processes
        // (checked by the determinism digest). Slots are stable: nothing
        // in the loop body inserts or removes pairs.
        let n_pairs = self.pairs.len();
        let mut need_pump = false;
        for k in 0..n_pairs {
            let s = self.pairs.slot_at(k);
            let pair = self.pairs.id(s);
            // Probe-loss detection (8 baseRTT timeout, §4.1).
            let base = self.pairs.cur_base_rtt[s];
            let active = self.pairs.active[s];
            let timeout = (self.cfg.probe_timeout_rtts * base).max(3 * self.pairs.srtt[s]);
            let timed_out = self.pairs.outstanding[s]
                .map(|o| now.saturating_sub(o.sent_at) > timeout)
                .unwrap_or(false);
            let idle_since = self.ep.last_activity(pair);
            let rto_due = self.ep.inflight(pair) > 0;
            let alt_due = active
                && now.saturating_sub(self.pairs.last_alt_probe[s]) >= self.cfg.alt_probe_period;
            let period_probe = active
                && self.cfg.probe_period_rtts.is_some()
                && self.pairs.outstanding[s].is_none();
            if timed_out {
                self.stats.probe_timeouts += 1;
                self.pairs.outstanding[s] = None;
                self.pairs.probe_losses[s] += 1;
                if self.pairs.probe_losses[s] >= 2 && now >= self.pairs.freeze_until[s] {
                    // Path considered failed: mark telemetry stale and
                    // migrate anywhere qualified.
                    let cur = self.pairs.cold[s].cur;
                    self.pairs.cold[s].telem[cur] = PathTelem::default();
                    self.pairs.violations[s] = self.cfg.violation_rtts;
                    self.probe_candidates(ctx, pair);
                    self.try_migrate(ctx, pair, false, true);
                } else {
                    let cur = self.pairs.cold[s].cur;
                    let registered = self.pairs.cold[s].registered.is_some();
                    self.send_probe(ctx, pair, cur, !registered);
                }
            }
            if rto_due {
                let rto = self.cfg.rto_rtts * base;
                if self.ep.check_timeouts(now, pair, rto) {
                    need_pump = true;
                }
            }
            if active {
                if period_probe {
                    self.maybe_probe(ctx, pair);
                }
                if alt_due {
                    self.probe_candidates(ctx, pair);
                }
                // Idle detection → finish probes (§3.6).
                let has_work = self.ep.has_backlog(pair) || self.ep.inflight(pair) > 0;
                if !has_work && now.saturating_sub(idle_since) >= self.cfg.idle_finish {
                    self.deactivate_pair(ctx, pair);
                }
            }
            self.flush_finish(ctx, pair);
        }
        // Budgeted keep-alives: beyond the L_m-self-clocked probes that
        // ride with data (§4.1 — the probes that give the 1.28 % bound),
        // every active pair occasionally needs a probe even when its data
        // clock ticks slowly — under-demanded pairs must keep their Eqn-3
        // claims fresh and window-limited pairs must keep the control
        // loop alive. These extra probes rotate across pairs under a
        // fixed per-host budget (≤2 per token tick), so their aggregate
        // bandwidth is bounded regardless of the pair count.
        let mut idle_candidates = std::mem::take(&mut self.keepalive_scratch);
        idle_candidates.clear();
        for s in self.pairs.slots_sorted() {
            if self.pairs.active[s]
                && self.pairs.outstanding[s].is_none()
                && now.saturating_sub(self.pairs.last_probe_sent[s])
                    >= 4 * self.pairs.cur_base_rtt[s]
            {
                idle_candidates.push(self.pairs.id(s));
            }
        }
        let budget = 2usize.min(idle_candidates.len());
        for k in 0..budget {
            let idx = (self.keepalive_cursor as usize + k) % idle_candidates.len();
            let pair = idle_candidates[idx];
            let (cur, registered) = {
                let s = self.pairs.slot(pair).expect("known pair");
                (
                    self.pairs.cold[s].cur,
                    self.pairs.cold[s].registered.is_some(),
                )
            };
            self.send_probe(ctx, pair, cur, !registered);
        }
        self.keepalive_cursor = self.keepalive_cursor.wrapping_add(budget as u64);
        self.keepalive_scratch = idle_candidates;
        if need_pump {
            self.pump(ctx);
        }
        ctx.set_timer(self.cfg.token_update_period, TICK);
    }

    fn deactivate_pair(&mut self, ctx: &mut EdgeCtx, pair: PairId) {
        let Some(s) = self.pairs.slot(pair) else {
            return;
        };
        if !self.pairs.active[s] {
            return;
        }
        self.pairs.active[s] = false;
        self.pairs.outstanding[s] = None;
        if let Some(reg) = self.pairs.cold[s].registered.take() {
            let c = &mut self.pairs.cold[s];
            let old = &c.candidates[reg.path];
            let pf = PendingFinish {
                route: old.route.clone(),
                n_switch_hops: old.n_switch_hops,
                phi: reg.phi,
                w: reg.w,
                seq: c.probe_seq,
                epoch: c.reg_epoch,
                retries: 0,
                next_retry: ctx.now,
            };
            c.pending_finish.push(pf);
            c.probe_seq += 1;
        }
        let tenant = self.pairs.cold[s].tenant;
        self.wfq.remove_pair(tenant, pair);
        self.flush_finish(ctx, pair);
    }

    /// Pull-based data pump: fill the NIC up to two packets, picking pairs
    /// via the hierarchical WFQ under their admission windows.
    fn pump(&mut self, ctx: &mut EdgeCtx) {
        let mut budget = 2usize.saturating_sub(ctx.nic.queue_pkts);
        while budget > 0 {
            let mut wfq = std::mem::take(&mut self.wfq);
            let picked = {
                let pairs = &self.pairs;
                let ep = &self.ep;
                let now = ctx.now;
                wfq.pick(|pair| {
                    let s = pairs.slot(pair)?;
                    if !pairs.active[s] || now < pairs.data_paused_until[s] {
                        return None;
                    }
                    let (payload, is_retx) = ep.peek_segment(pair)?;
                    let inflight = ep.inflight(pair);
                    if is_retx || inflight + payload as u64 <= pairs.window[s] as u64 {
                        Some(payload + DATA_OVERHEAD)
                    } else if (inflight as f64) < pairs.window[s] && now >= pairs.next_send_at[s] {
                        // Fractional window credit (including sub-MTU
                        // windows): a packet may start whenever inflight <
                        // window, with the overshoot paced so the average
                        // rate stays window/baseRTT (the FPGA scheduler's
                        // per-pair pacing, §4.1). Without this, a window of
                        // 1.7 packets quantises down to 1 packet/RTT and
                        // token-proportional sharing breaks.
                        Some(payload + DATA_OVERHEAD)
                    } else {
                        None
                    }
                })
            };
            self.wfq = wfq;
            let Some((pair, _size)) = picked else {
                break;
            };
            let Some((info, wire_size)) = self.ep.next_segment(ctx.now, pair) else {
                break;
            };
            let s = self.pairs.slot(pair).expect("picked pair exists");
            if self.ep.inflight(pair) > self.pairs.window[s] as u64 {
                // This send overshot the window (fractional credit): pace
                // the next one so the average rate stays window/baseRTT.
                let rate_bps =
                    self.pairs.window[s].max(1.0) * 8.0 / (self.pairs.cur_base_rtt[s] as f64 / 1e9);
                let gap = (info.payload as f64 * 8.0 / rate_bps * 1e9) as Time;
                self.pairs.next_send_at[s] = ctx.now + gap;
            }
            let c = &self.pairs.cold[s];
            let pkt = Packet {
                src: self.host,
                dst: c.dst_host,
                pair,
                tenant: c.tenant,
                size: wire_size,
                kind: PacketKind::Data(info),
                route: Route::from(c.candidates[c.cur].route.as_slice()),
                hop: 0,
                ecn: false,
                max_util: 0.0,
                sent_at: ctx.now,
            };
            self.pairs.bytes_since_probe[s] += info.payload as u64;
            ctx.send(pkt);
            budget -= 1;
            self.maybe_probe(ctx, pair);
        }
    }
}

impl EdgeAgent for UfabEdge {
    fn on_start(&mut self, ctx: &mut EdgeCtx) {
        ctx.set_timer(self.cfg.token_update_period, TICK);
    }

    fn on_packet(&mut self, ctx: &mut EdgeCtx, pkt: Packet) {
        match &pkt.kind {
            PacketKind::Data(_) => {
                let (ack, reply) = self.ep.on_data(ctx.now, &pkt);
                let route = self.reply_route(&pkt);
                ctx.send(Packet {
                    src: self.host,
                    dst: pkt.src,
                    pair: pkt.pair,
                    tenant: pkt.tenant,
                    size: ACK_SIZE,
                    kind: PacketKind::Ack(ack),
                    route,
                    hop: 0,
                    ecn: false,
                    max_util: 0.0,
                    sent_at: ctx.now,
                });
                if let Some(msg) = reply {
                    let p = msg.pair;
                    self.ep.submit(ctx.now, msg);
                    self.activate_pair(ctx, p);
                    self.pump(ctx);
                }
            }
            PacketKind::Ack(ack) => {
                let res = self.ep.on_ack(ctx.now, pkt.pair, ack);
                if let Some(rtt) = res.rtt {
                    self.ep.recorder().borrow_mut().rtt(
                        ctx.now,
                        pkt.pair.raw(),
                        pkt.tenant.raw(),
                        rtt,
                    );
                }
                if res.valid {
                    self.pump(ctx);
                }
            }
            PacketKind::Probe(frame) => {
                // We are the destination: record demand, respond.
                self.rx_demand.insert(pkt.pair, (frame.phi, ctx.now));
                let admitted = self
                    .rx_admitted
                    .get(&pkt.pair)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                let resp = frame.clone().into_response(admitted);
                let route = self.reply_route(&pkt);
                let size = wire::probe_packet_bytes(resp.hops.len(), route.len()) as u32;
                ctx.send(Packet {
                    src: self.host,
                    dst: pkt.src,
                    pair: pkt.pair,
                    tenant: pkt.tenant,
                    size,
                    kind: PacketKind::Response(resp),
                    route,
                    hop: 0,
                    ecn: false,
                    max_util: 0.0,
                    sent_at: ctx.now,
                });
            }
            PacketKind::Response(frame) => {
                let frame = frame.clone();
                self.handle_response(ctx, frame);
            }
            PacketKind::Finish(frame) => {
                // Destination: echo the acknowledgements back.
                let mut echo = frame.clone();
                echo.forward = false;
                let route = self.reply_route(&pkt);
                ctx.send(Packet {
                    src: self.host,
                    dst: pkt.src,
                    pair: pkt.pair,
                    tenant: pkt.tenant,
                    size: pkt.size,
                    kind: PacketKind::FinishAck(echo),
                    route,
                    hop: 0,
                    ecn: false,
                    max_util: 0.0,
                    sent_at: ctx.now,
                });
            }
            PacketKind::FinishAck(frame) => {
                if let Some(s) = self.pairs.slot(pkt.pair) {
                    self.pairs.cold[s]
                        .pending_finish
                        .retain(|pf| !(frame.seq == pf.seq && frame.all_acked(pf.n_switch_hops)));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut EdgeCtx, kind: u64) {
        if kind == TICK {
            self.tick(ctx);
        }
    }

    fn on_nic_idle(&mut self, ctx: &mut EdgeCtx) {
        self.pump(ctx);
    }

    fn on_inject(&mut self, ctx: &mut EdgeCtx, msg: Inject) {
        let Inject::App(msg) = msg;
        self.submit(ctx, msg);
    }

    fn on_restart(&mut self, ctx: &mut EdgeCtx) {
        // μFAB-E process restart: everything the SmartNIC program keeps in
        // its own memory — path candidates, telemetry, registrations,
        // receiver tokens, schedulers, route caches — is gone. The
        // transport endpoint survives (host memory: application queues and
        // inflight accounting), exactly the paper's split between the edge
        // *program* and the host stack it serves.
        self.pairs.clear();
        self.rx_demand.clear();
        self.rx_admitted.clear();
        self.wfq = WfqScheduler::new();
        self.routes_back.clear();
        self.reverse_cache.clear();
        self.keepalive_cursor = 0;
        self.stats.restarts += 1;
        // Rebuild from probing: every pair that still has work re-enters
        // through the §3.4 bootstrap (fresh candidates, registering probe,
        // candidate probes), as a newly-started edge would.
        for pair in self.ep.sending_pairs() {
            if self.ep.has_backlog(pair) || self.ep.inflight(pair) > 0 {
                self.activate_pair(ctx, pair);
            }
        }
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
