//! The bandwidth-allocation equations of §3.3–§3.4.
//!
//! All functions are pure so the control law is unit-testable without a
//! simulator. Units: rates in bits/sec, windows/queues in bytes, time in
//! seconds, tokens dimensionless.

use telemetry::HopInfo;

/// Eqn (1): the guaranteed proportional share of a pair with token `phi`
/// on a link, `r^l = (φ/Φ_l)·C_l` with `C_l = η·C^max`.
///
/// If the link reports no token mass yet (Φ_l < φ, e.g. the pair's own
/// registration has not landed), the pair's own token is used as the
/// floor so the share never exceeds the target capacity.
pub fn share_rate(phi: f64, hop: &HopInfo, eta: f64) -> f64 {
    let c_target = eta * hop.cap_bps as f64;
    let phi_total = hop.phi_total.max(phi).max(1e-9);
    (phi / phi_total) * c_target
}

/// Eqn (1) composed over a path: `r_{a→b} = min_l r^l`.
pub fn path_share_rate(phi: f64, hops: &[HopInfo], eta: f64) -> f64 {
    hops.iter()
        .map(|h| share_rate(phi, h, eta))
        .fold(f64::INFINITY, f64::min)
}

/// Eqn (3): the utilisation-based window on one link,
///
/// ```text
/// w^l = min{ (φ/Φ_l) · W_l · (C_l·T)/(tx_l·T + q_l),  C_l·T }
/// ```
///
/// with `T` the pair's baseRTT. Returns bytes. The denominator is floored
/// at one `mtu` worth of bits so an idle link (tx = q = 0) yields the cap
/// rather than a division blow-up.
pub fn window_eqn3(
    phi: f64,
    w_own: f64,
    hop: &HopInfo,
    base_rtt_s: f64,
    eta: f64,
    mtu: u32,
) -> f64 {
    let c_target = eta * hop.cap_bps as f64;
    let cap_window = c_target * base_rtt_s / 8.0; // bytes
    let phi_total = hop.phi_total.max(phi).max(1e-9);
    let w_total = hop.w_total.max(w_own).max(1.0);
    // One MTU of backlog is store-and-forward occupancy, not congestion;
    // counting it would shave ~q/C·T off steady-state utilisation.
    let q_excess = hop.q_bytes.saturating_sub(mtu as u64);
    let inflight_bits = hop.tx_bps * base_rtt_s + q_excess as f64 * 8.0;
    let inflight_bits = inflight_bits.max(mtu as f64 * 8.0);
    let w = (phi / phi_total) * w_total * (c_target * base_rtt_s) / inflight_bits;
    w.min(cap_window)
}

/// Eqn (3) composed over a path: `w_{a→b} = min_l w^l`.
#[allow(clippy::too_many_arguments)]
pub fn path_window(
    phi: f64,
    w_own: f64,
    hops: &[HopInfo],
    base_rtt_s: f64,
    eta: f64,
    mtu: u32,
) -> f64 {
    hops.iter()
        .map(|h| window_eqn3(phi, w_own, h, base_rtt_s, eta, mtu))
        .fold(f64::INFINITY, f64::min)
}

/// Path qualification (§3.3/§3.5): a path can serve the pair's minimum
/// bandwidth iff every link satisfies `C_l ≥ (Φ_l + φ_add)·B_u`, where
/// `φ_add` is the pair's token if it is **not** yet counted in Φ_l (a
/// candidate path) and 0 if it is (the current path).
pub fn path_qualified(hops: &[HopInfo], phi_add: f64, bu_bps: f64, eta: f64) -> bool {
    hops.iter().all(|h| {
        let c_target = eta * h.cap_bps as f64;
        c_target >= (h.phi_total + phi_add) * bu_bps
    })
}

/// Bottleneck subscription ratio of a path: `max_l (Φ_l+φ_add)·B_u / C_l`.
/// Lower is better — the §3.5 selection prefers minimum subscription.
pub fn path_subscription(hops: &[HopInfo], phi_add: f64, bu_bps: f64, eta: f64) -> f64 {
    hops.iter()
        .map(|h| {
            let c_target = eta * h.cap_bps as f64;
            (h.phi_total + phi_add) * bu_bps / c_target.max(1.0)
        })
        .fold(0.0, f64::max)
}

/// Work-conservation upper bound estimate (Eqn 2 in window form): what
/// rate the pair could reach on this path — its proportional share of the
/// target capacity plus any idle headroom.
pub fn path_potential_rate(phi: f64, hops: &[HopInfo], eta: f64) -> f64 {
    hops.iter()
        .map(|h| {
            let c_target = eta * h.cap_bps as f64;
            let share = share_rate(phi, h, eta);
            let headroom = (c_target - h.tx_bps).max(0.0);
            (share + headroom).min(c_target)
        })
        .fold(f64::INFINITY, f64::min)
}

/// Scenario-1/2 bootstrap window (§3.4): guarantee (or current share) over
/// one baseRTT.
pub fn bootstrap_window(rate_bps: f64, base_rtt_s: f64) -> f64 {
    (rate_bps * base_rtt_s / 8.0).max(1.0)
}

/// Per-RTT additive increase of the bootstrap window:
/// `(φ/Φ_l)·C_l·T` on the bottleneck link (§3.4 Scenario-1).
pub fn bootstrap_increment(phi: f64, hops: &[HopInfo], base_rtt_s: f64, eta: f64) -> f64 {
    let r = path_share_rate(phi, hops, eta);
    (r * base_rtt_s / 8.0).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(phi_total: f64, w_total: f64, tx_gbps: f64, q_bytes: u64, cap_gbps: u64) -> HopInfo {
        HopInfo {
            node: 0,
            port: 0,
            w_total,
            phi_total,
            tx_bps: tx_gbps * 1e9,
            q_bytes,
            cap_bps: cap_gbps * 1_000_000_000,
        }
    }

    const ETA: f64 = 0.95;

    #[test]
    fn share_is_token_proportional() {
        let h = hop(10.0, 0.0, 0.0, 0, 10);
        // 2 of 10 tokens on a 9.5 G target → 1.9 G.
        assert!((share_rate(2.0, &h, ETA) - 1.9e9).abs() < 1.0);
        // Unregistered pair on an empty link: own-token floor → full target.
        let empty = hop(0.0, 0.0, 0.0, 0, 10);
        assert!((share_rate(2.0, &empty, ETA) - 9.5e9).abs() < 1.0);
    }

    #[test]
    fn path_share_takes_bottleneck() {
        let hops = vec![hop(2.0, 0.0, 0.0, 0, 10), hop(20.0, 0.0, 0.0, 0, 10)];
        let r = path_share_rate(2.0, &hops, ETA);
        assert!((r - 0.95e9).abs() < 1.0); // 2/20 of 9.5G
    }

    #[test]
    fn window_caps_at_bdp_on_idle_link() {
        // Idle link, own window only: grows straight to the C·T cap.
        let t = 24e-6;
        let h = hop(1.0, 1500.0, 0.0, 0, 10);
        let w = window_eqn3(1.0, 1500.0, &h, t, ETA, 1500);
        let cap = ETA * 10e9 * t / 8.0;
        assert!((w - cap).abs() < 1.0, "w={w} cap={cap}");
    }

    #[test]
    fn window_shrinks_with_queue() {
        let t = 24e-6;
        // Link fully utilised with a 3 BDP queue: window scales below the
        // proportional share.
        let bdp = 10e9 * t / 8.0;
        let busy = hop(2.0, 2.0 * bdp, 10.0, (3.0 * bdp) as u64, 10);
        let w = window_eqn3(1.0, bdp, &busy, t, ETA, 1500);
        // Fair share of W is bdp; multiplier = C·T/(tx·T+q) = 9.5/(10+24)≈0.28.
        assert!(w < 0.35 * bdp, "w={w} bdp={bdp}");
        // And the same link without queue gives a bigger window.
        let no_q = hop(2.0, 2.0 * bdp, 10.0, 0, 10);
        let w2 = window_eqn3(1.0, bdp, &no_q, t, ETA, 1500);
        assert!(w2 > w);
    }

    #[test]
    fn window_weighted_fair_split() {
        // Two pairs with tokens 1 and 3 share a saturated link: windows
        // proportional to tokens.
        let t = 24e-6;
        let bdp = 10e9 * t / 8.0;
        let h = hop(4.0, bdp, 9.5, 0, 10);
        let w1 = window_eqn3(1.0, 0.25 * bdp, &h, t, ETA, 1500);
        let w3 = window_eqn3(3.0, 0.75 * bdp, &h, t, ETA, 1500);
        assert!((w3 / w1 - 3.0).abs() < 1e-6, "ratio {}", w3 / w1);
    }

    #[test]
    fn qualification_boundary() {
        // 9.5 G target, B_u = 1 G: 9 tokens qualified, 10 not.
        let bu = 1e9;
        let h9 = vec![hop(8.0, 0.0, 0.0, 0, 10)];
        assert!(path_qualified(&h9, 1.0, bu, ETA)); // 8+1 = 9 ≤ 9.5
        let h10 = vec![hop(9.0, 0.0, 0.0, 0, 10)];
        assert!(!path_qualified(&h10, 1.0, bu, ETA)); // 9+1 = 10 > 9.5
                                                      // Current path (already counted): no φ added.
        assert!(path_qualified(&h10, 0.0, bu, ETA));
    }

    #[test]
    fn subscription_ranks_paths() {
        let light = vec![hop(2.0, 0.0, 0.0, 0, 10)];
        let heavy = vec![hop(8.0, 0.0, 0.0, 0, 10)];
        let s_light = path_subscription(&light, 1.0, 1e9, ETA);
        let s_heavy = path_subscription(&heavy, 1.0, 1e9, ETA);
        assert!(s_light < s_heavy);
        assert!((s_light - 3.0e9 / 9.5e9).abs() < 1e-9);
    }

    #[test]
    fn potential_rate_sees_idle_headroom() {
        // Congested path: only the proportional share.
        let busy = vec![hop(10.0, 0.0, 9.5, 0, 10)];
        let p_busy = path_potential_rate(1.0, &busy, ETA);
        assert!((p_busy - 0.95e9).abs() < 1e6);
        // Idle path: nearly the full target.
        let idle = vec![hop(10.0, 0.0, 0.5, 0, 10)];
        let p_idle = path_potential_rate(1.0, &idle, ETA);
        assert!(p_idle > 8e9);
    }

    #[test]
    fn bootstrap_window_is_guarantee_bdp() {
        // 1 Gbps guarantee over 24 us = 3 KB.
        let w = bootstrap_window(1e9, 24e-6);
        assert!((w - 3000.0).abs() < 1.0);
        assert_eq!(bootstrap_window(0.0, 24e-6), 1.0);
    }

    #[test]
    fn bootstrap_increment_tracks_share() {
        let hops = vec![hop(10.0, 0.0, 0.0, 0, 10)];
        // Share = 0.95 G; increment = share·T/8 = 2850 B at 24 us.
        let inc = bootstrap_increment(1.0, &hops, 24e-6, ETA);
        assert!((inc - 2850.0).abs() < 1.0);
    }
}
