//! The hierarchical packet scheduler of §4.1.
//!
//! μFAB-E enforces a three-level hierarchy: weighted fair queuing across
//! tenants (VFs), round-robin across a tenant's VM-pairs, round-robin
//! across a pair's application flows (the last level lives in
//! [`crate::endpoint`]). The FPGA implementation constrains the WFQ engine
//! to **8 weighted queues with distinct weight levels** — tenants are
//! binned to the nearest power-of-two weight — trading a little
//! differentiation precision for scalability.
//!
//! We implement the weighted sharing with start-time fair queuing over the
//! binned weights: each tenant carries a virtual time advanced by
//! `bytes/weight` per scheduled packet; the eligible tenant with the
//! smallest virtual time sends next. This yields the same weighted
//! scheduling results as the banked hardware engine.

use netsim::{PairId, TenantId};
use std::collections::HashMap;

/// Quantise a tenant's token count to one of `levels` power-of-two weight
/// classes: 1, 2, 4, …, 2^(levels−1).
pub fn weight_class(tokens: f64, levels: u8) -> f64 {
    assert!(levels >= 1);
    let max = 1u64 << (levels - 1);
    if tokens <= 1.0 {
        return 1.0;
    }
    let exp = tokens.log2().round().max(0.0) as u32;
    ((1u64 << exp.min(levels as u32 - 1)).min(max)) as f64
}

#[derive(Debug)]
struct TenantQueue {
    id: TenantId,
    weight: f64,
    vtime: f64,
    pairs: Vec<PairId>,
    rr: usize,
}

/// The tenant-level weighted fair scheduler.
///
/// Tenant queues live in a dense slot `Vec` (stable for the scheduler's
/// lifetime) with a side index; the per-pick virtual-time ordering sorts
/// a reused slot scratch with direct slot access — the pick path, called
/// once per scheduled packet *and* on every NIC-idle poll, allocates
/// nothing and never hashes inside a comparison.
#[derive(Debug, Default)]
pub struct WfqScheduler {
    index: HashMap<TenantId, u32>,
    slots: Vec<TenantQueue>,
    /// Reused pick-order scratch (slot indices, sorted by (vtime, id)).
    order: Vec<u32>,
    min_vtime: f64,
}

impl WfqScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-weight) a tenant with an already-binned weight.
    pub fn set_tenant(&mut self, tenant: TenantId, weight: f64) {
        assert!(weight > 0.0);
        match self.index.get(&tenant) {
            Some(&s) => self.slots[s as usize].weight = weight,
            None => {
                self.index.insert(tenant, self.slots.len() as u32);
                self.slots.push(TenantQueue {
                    id: tenant,
                    weight,
                    vtime: self.min_vtime,
                    pairs: Vec::new(),
                    rr: 0,
                });
            }
        }
    }

    /// Add a pair under its tenant (idempotent). The tenant must be
    /// registered first.
    pub fn add_pair(&mut self, tenant: TenantId, pair: PairId) {
        let s = *self.index.get(&tenant).expect("tenant not registered");
        let t = &mut self.slots[s as usize];
        if !t.pairs.contains(&pair) {
            t.pairs.push(pair);
        }
    }

    /// Remove a pair (e.g. deactivated).
    pub fn remove_pair(&mut self, tenant: TenantId, pair: PairId) {
        if let Some(&s) = self.index.get(&tenant) {
            let t = &mut self.slots[s as usize];
            t.pairs.retain(|&p| p != pair);
            if t.rr >= t.pairs.len() {
                t.rr = 0;
            }
        }
    }

    /// Number of schedulable pairs.
    pub fn n_pairs(&self) -> usize {
        self.slots.iter().map(|t| t.pairs.len()).sum()
    }

    /// Pick the next pair to send from. `eligible(pair)` returns the wire
    /// size of the packet the pair would send, or `None` if the pair
    /// cannot send right now (no backlog / window full / paused).
    ///
    /// Charges the chosen tenant's virtual time and advances its pair
    /// round-robin pointer. Returns `(pair, size)`.
    pub fn pick<F: FnMut(PairId) -> Option<u32>>(
        &mut self,
        mut eligible: F,
    ) -> Option<(PairId, u32)> {
        // Tenants in ascending virtual-time order (stable by id for
        // determinism). Tenants with no schedulable pairs are skipped
        // before the sort — the inner loop would only skip them anyway.
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.pairs.is_empty())
                .map(|(s, _)| s as u32),
        );
        let slots = &self.slots;
        order.sort_by(|&a, &b| {
            let ta = &slots[a as usize];
            let tb = &slots[b as usize];
            ta.vtime
                .partial_cmp(&tb.vtime)
                .expect("NaN vtime")
                .then(ta.id.cmp(&tb.id))
        });
        let mut picked = None;
        'outer: for &s in &order {
            let t = &mut self.slots[s as usize];
            let n = t.pairs.len();
            for k in 0..n {
                let idx = (t.rr + k) % n;
                let pair = t.pairs[idx];
                if let Some(size) = eligible(pair) {
                    t.rr = (idx + 1) % n;
                    t.vtime += size as f64 / t.weight;
                    let floor = self
                        .slots
                        .iter()
                        .filter(|t| !t.pairs.is_empty())
                        .map(|t| t.vtime)
                        .fold(f64::INFINITY, f64::min);
                    if floor.is_finite() {
                        self.min_vtime = floor;
                    }
                    picked = Some((pair, size));
                    break 'outer;
                }
            }
        }
        self.order = order;
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_class_bins_to_powers_of_two() {
        assert_eq!(weight_class(0.5, 8), 1.0);
        assert_eq!(weight_class(1.0, 8), 1.0);
        assert_eq!(weight_class(2.0, 8), 2.0);
        assert_eq!(weight_class(3.0, 8), 4.0); // log2(3)≈1.58 rounds to 2
        assert_eq!(weight_class(5.0, 8), 4.0);
        assert_eq!(weight_class(10.0, 8), 8.0);
        assert_eq!(weight_class(1e9, 8), 128.0); // clamped to 2^7
        assert_eq!(weight_class(1e9, 4), 8.0);
    }

    #[test]
    fn shares_proportional_to_weights() {
        let mut s = WfqScheduler::new();
        let t1 = TenantId(1);
        let t5 = TenantId(5);
        s.set_tenant(t1, 1.0);
        s.set_tenant(t5, 4.0);
        s.add_pair(t1, PairId(10));
        s.add_pair(t5, PairId(50));
        let mut counts = HashMap::new();
        for _ in 0..500 {
            let (p, _) = s.pick(|_| Some(1500)).unwrap();
            *counts.entry(p).or_insert(0u32) += 1;
        }
        let c1 = counts[&PairId(10)] as f64;
        let c5 = counts[&PairId(50)] as f64;
        let ratio = c5 / c1;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn round_robin_within_tenant() {
        let mut s = WfqScheduler::new();
        let t = TenantId(0);
        s.set_tenant(t, 1.0);
        s.add_pair(t, PairId(1));
        s.add_pair(t, PairId(2));
        s.add_pair(t, PairId(3));
        let picks: Vec<u32> = (0..6)
            .map(|_| s.pick(|_| Some(100)).unwrap().0.raw())
            .collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn ineligible_pairs_skipped_without_charge() {
        let mut s = WfqScheduler::new();
        let ta = TenantId(0);
        let tb = TenantId(1);
        s.set_tenant(ta, 1.0);
        s.set_tenant(tb, 1.0);
        s.add_pair(ta, PairId(1));
        s.add_pair(tb, PairId(2));
        // Pair 1 never eligible: all service goes to pair 2.
        for _ in 0..10 {
            let (p, _) = s
                .pick(|p| if p == PairId(1) { None } else { Some(100) })
                .unwrap();
            assert_eq!(p, PairId(2));
        }
        // Once pair 1 wakes up, it is immediately preferred (lower vtime).
        let (p, _) = s.pick(|_| Some(100)).unwrap();
        assert_eq!(p, PairId(1));
    }

    #[test]
    fn nothing_eligible_returns_none() {
        let mut s = WfqScheduler::new();
        s.set_tenant(TenantId(0), 1.0);
        s.add_pair(TenantId(0), PairId(1));
        assert!(s.pick(|_| None).is_none());
        assert!(WfqScheduler::new().pick(|_| Some(1)).is_none());
    }

    #[test]
    fn late_joiner_not_starved_and_cannot_hog() {
        let mut s = WfqScheduler::new();
        let ta = TenantId(0);
        s.set_tenant(ta, 1.0);
        s.add_pair(ta, PairId(1));
        for _ in 0..100 {
            s.pick(|_| Some(1500)).unwrap();
        }
        // New tenant joins at the current floor, not at zero: it must not
        // monopolise to "catch up".
        let tb = TenantId(1);
        s.set_tenant(tb, 1.0);
        s.add_pair(tb, PairId(2));
        let mut first = Vec::new();
        for _ in 0..10 {
            first.push(s.pick(|_| Some(1500)).unwrap().0.raw());
        }
        let b_share = first.iter().filter(|&&p| p == 2).count();
        assert!(b_share <= 6, "late joiner hogged: {first:?}");
        assert!(b_share >= 4, "late joiner starved: {first:?}");
    }

    #[test]
    fn remove_pair_stops_service() {
        let mut s = WfqScheduler::new();
        let t = TenantId(0);
        s.set_tenant(t, 1.0);
        s.add_pair(t, PairId(1));
        s.add_pair(t, PairId(2));
        s.remove_pair(t, PairId(1));
        for _ in 0..5 {
            assert_eq!(s.pick(|_| Some(10)).unwrap().0, PairId(2));
        }
        assert_eq!(s.n_pairs(), 1);
    }
}
