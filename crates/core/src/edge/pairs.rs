//! Struct-of-arrays storage for per-pair control state.
//!
//! The μFAB-E control tick walks every pair once per token update period
//! and touches only a handful of scalars per pair (timeouts, probe
//! clocks, windows). Keeping those scalars in dense parallel columns —
//! instead of scattered across one large heap struct per pair behind a
//! `HashMap` — turns the tick into linear scans over a few cache lines
//! and removes a hash lookup per field group.
//!
//! Layout:
//!
//! * `index` maps `PairId` → slot. Slots are stable for the lifetime of
//!   the agent (pairs deactivate but are never removed; a restart clears
//!   the whole table), so a slot resolved once stays valid.
//! * `order` keeps the slots sorted by `PairId`, maintained incrementally
//!   on insert. Every control-loop walk iterates `order`, which preserves
//!   the sorted-iteration determinism contract (same-seed runs are
//!   byte-identical regardless of hash state) without the per-tick
//!   collect + sort the `HashMap` walk needed.
//! * hot fields live in one `Vec` per field; everything bulky or rarely
//!   touched (candidate paths, telemetry snapshots, pending finishes)
//!   stays in the cold [`PairCold`] row.

use netsim::{NodeId, PairId, PortNo, TenantId, Time, VmId};
use std::collections::HashMap;
use telemetry::HopInfo;

/// Telemetry snapshot for one candidate path.
#[derive(Debug, Clone, Default)]
pub(super) struct PathTelem {
    pub(super) hops: Vec<HopInfo>,
    pub(super) at: Time,
}

/// A candidate underlay path.
#[derive(Debug, Clone)]
pub(super) struct PathInfo {
    pub(super) route: Vec<PortNo>,
    pub(super) base_rtt: Time,
    pub(super) n_switch_hops: usize,
}

#[derive(Debug, Clone, Copy)]
pub(super) struct Registration {
    pub(super) path: usize,
    pub(super) phi: f64,
    pub(super) w: f64,
}

#[derive(Debug, Clone, Copy)]
pub(super) struct ProbeOut {
    pub(super) seq: u64,
    pub(super) path: usize,
    pub(super) sent_at: Time,
}

#[derive(Debug)]
pub(super) struct PendingFinish {
    pub(super) route: Vec<PortNo>,
    pub(super) n_switch_hops: usize,
    pub(super) phi: f64,
    pub(super) w: f64,
    pub(super) seq: u64,
    pub(super) epoch: u64,
    pub(super) retries: u32,
    pub(super) next_retry: Time,
}

/// Cold per-pair state: bulky, touched on control events (responses,
/// migrations), not on every tick.
#[derive(Debug)]
pub(super) struct PairCold {
    pub(super) tenant: TenantId,
    pub(super) src_vm: VmId,
    pub(super) dst_host: NodeId,
    pub(super) candidates: Vec<PathInfo>,
    pub(super) telem: Vec<PathTelem>,
    pub(super) cur: usize,
    pub(super) registered: Option<Registration>,
    pub(super) reg_epoch: u64,
    pub(super) probe_seq: u64,
    pub(super) cand_probes: HashMap<u64, ProbeOut>,
    pub(super) better_since: Option<Time>,
    pub(super) pending_finish: Vec<PendingFinish>,
}

/// The SoA pair table. Hot fields are public columns indexed by slot;
/// resolve a slot once with [`PairTable::slot`] and index directly.
#[derive(Debug, Default)]
pub(super) struct PairTable {
    index: HashMap<PairId, u32>,
    ids: Vec<PairId>,
    /// Slots sorted by `PairId` (the deterministic walk order).
    order: Vec<u32>,
    // ---- hot columns (all Copy, one cache-dense Vec per field) ----
    pub(super) active: Vec<bool>,
    /// Sender-assigned token φ_s (GP).
    pub(super) phi_s: Vec<f64>,
    /// Receiver-admitted token φ_p (∞ until constrained).
    pub(super) phi_r: Vec<f64>,
    /// Admission window in payload bytes (what the scheduler enforces).
    pub(super) window: Vec<f64>,
    /// Claimed window from Eqn 3 (what probes register at switches).
    pub(super) w_claim: Vec<f64>,
    /// Two-stage bootstrap window w′ (None = steady state).
    pub(super) boot: Vec<Option<f64>>,
    pub(super) outstanding: Vec<Option<ProbeOut>>,
    pub(super) bytes_since_probe: Vec<u64>,
    pub(super) last_probe_sent: Vec<Time>,
    pub(super) probe_losses: Vec<u32>,
    pub(super) violations: Vec<u32>,
    pub(super) unqualified: Vec<u32>,
    pub(super) freeze_until: Vec<Time>,
    pub(super) data_paused_until: Vec<Time>,
    /// Pacing gate for sub-MTU windows: no data before this instant.
    pub(super) next_send_at: Vec<Time>,
    /// Smoothed probe RTT.
    pub(super) srtt: Vec<Time>,
    pub(super) last_alt_probe: Vec<Time>,
    /// Cache of `candidates[cur].base_rtt` — the tick reads it for every
    /// pair; refreshed by [`PairTable::set_cur`] on migration.
    pub(super) cur_base_rtt: Vec<Time>,
    pub(super) cold: Vec<PairCold>,
}

impl PairTable {
    pub(super) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Resolve a pair to its slot.
    #[inline]
    pub(super) fn slot(&self, pair: PairId) -> Option<usize> {
        self.index.get(&pair).map(|&s| s as usize)
    }

    #[inline]
    pub(super) fn id(&self, slot: usize) -> PairId {
        self.ids[slot]
    }

    /// The k-th slot in PairId order.
    #[inline]
    pub(super) fn slot_at(&self, k: usize) -> usize {
        self.order[k] as usize
    }

    /// Slots in ascending `PairId` order (the deterministic walk).
    pub(super) fn slots_sorted(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|&s| s as usize)
    }

    /// Pair ids in ascending order, allocation-free.
    pub(super) fn ids_sorted(&self) -> impl Iterator<Item = PairId> + '_ {
        self.order.iter().map(|&s| self.ids[s as usize])
    }

    /// Effective (min of sender/receiver) token.
    #[inline]
    pub(super) fn phi_eff(&self, slot: usize) -> f64 {
        self.phi_s[slot].min(self.phi_r[slot]).max(0.0)
    }

    #[inline]
    pub(super) fn cur_path(&self, slot: usize) -> &PathInfo {
        let c = &self.cold[slot];
        &c.candidates[c.cur]
    }

    /// Switch the current candidate, keeping the baseRTT cache fresh.
    pub(super) fn set_cur(&mut self, slot: usize, idx: usize) {
        self.cold[slot].cur = idx;
        self.cur_base_rtt[slot] = self.cold[slot].candidates[idx].base_rtt;
    }

    /// Insert a fresh pair (must not exist). Hot fields start at their
    /// activation defaults; returns the new slot.
    pub(super) fn insert(
        &mut self,
        pair: PairId,
        cold: PairCold,
        phi_s: f64,
        window: f64,
        boot: Option<f64>,
        now: Time,
    ) -> usize {
        debug_assert!(!self.index.contains_key(&pair), "duplicate pair insert");
        let slot = self.ids.len() as u32;
        self.index.insert(pair, slot);
        self.ids.push(pair);
        let pos = self.order.partition_point(|&s| self.ids[s as usize] < pair);
        self.order.insert(pos, slot);
        self.cur_base_rtt.push(cold.candidates[cold.cur].base_rtt);
        self.cold.push(cold);
        self.active.push(true);
        self.phi_s.push(phi_s);
        self.phi_r.push(f64::INFINITY);
        self.window.push(window);
        self.w_claim.push(window);
        self.boot.push(boot);
        self.outstanding.push(None);
        self.bytes_since_probe.push(0);
        self.last_probe_sent.push(0);
        self.probe_losses.push(0);
        self.violations.push(0);
        self.unqualified.push(0);
        self.freeze_until.push(0);
        self.data_paused_until.push(0);
        self.next_send_at.push(0);
        self.srtt.push(0);
        self.last_alt_probe.push(now);
        slot as usize
    }

    /// Wipe the table (agent restart: volatile SmartNIC state is gone).
    pub(super) fn clear(&mut self) {
        self.index.clear();
        self.ids.clear();
        self.order.clear();
        self.active.clear();
        self.phi_s.clear();
        self.phi_r.clear();
        self.window.clear();
        self.w_claim.clear();
        self.boot.clear();
        self.outstanding.clear();
        self.bytes_since_probe.clear();
        self.last_probe_sent.clear();
        self.probe_losses.clear();
        self.violations.clear();
        self.unqualified.clear();
        self.freeze_until.clear();
        self.data_paused_until.clear();
        self.next_send_at.clear();
        self.srtt.clear();
        self.last_alt_probe.clear();
        self.cur_base_rtt.clear();
        self.cold.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cold(dst: u32) -> PairCold {
        PairCold {
            tenant: TenantId(0),
            src_vm: VmId(0),
            dst_host: NodeId(dst),
            candidates: vec![PathInfo {
                route: vec![PortNo(0)],
                base_rtt: 1000 + dst as Time,
                n_switch_hops: 1,
            }],
            telem: vec![PathTelem::default()],
            cur: 0,
            registered: None,
            reg_epoch: 0,
            probe_seq: 0,
            cand_probes: HashMap::new(),
            better_since: None,
            pending_finish: Vec::new(),
        }
    }

    #[test]
    fn insert_keeps_sorted_order_and_columns_aligned() {
        let mut t = PairTable::default();
        for raw in [5u32, 1, 9, 3] {
            t.insert(PairId(raw), cold(raw), 1.0, 100.0, None, 42);
        }
        let ids: Vec<u32> = t.ids_sorted().map(|p| p.raw()).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert_eq!(t.len(), 4);
        for k in 0..t.len() {
            let s = t.slot_at(k);
            assert_eq!(t.slot(t.id(s)), Some(s));
            assert_eq!(t.cur_base_rtt[s], t.cur_path(s).base_rtt);
            assert!(t.active[s]);
            assert_eq!(t.last_alt_probe[s], 42);
            assert!(t.phi_r[s].is_infinite());
        }
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.slot(PairId(5)), None);
    }
}
