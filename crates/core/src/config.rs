//! μFAB configuration knobs, with the paper's defaults.

use netsim::{Time, MS, SEC, US};

/// Tunables of μFAB-E and μFAB-C.
///
/// Defaults reproduce the paper's evaluation settings (§5.1 and the
/// implementation notes of §3.5/§4.1):
/// target utilisation η = 0.95, token update period 32 μs, probe spacing
/// L_m = 4 KB, migration-violation hold of 5 RTTs, freeze window drawn
/// from [1, 10] RTTs (the §5.6 sweet spot), probe-loss timeout of
/// 8 baseRTTs, better-path observation of 30 s.
#[derive(Debug, Clone)]
pub struct UfabConfig {
    /// Target link utilisation η; C_l = η·C^max_l (95 % headroom absorbs
    /// transient bursts, §3.3 footnote).
    pub target_utilization: f64,
    /// Data bytes a pair transmits between probes (L_m, §4.1). The probe
    /// overhead bound is L_p/(L_p+L_m) — 1.28 % at 4 KB.
    pub probe_lm_bytes: u64,
    /// Fixed probe period in RTTs instead of self-clocking
    /// (None = self-clocked; `Some(n)` reproduces Fig 18c's lazy probing).
    pub probe_period_rtts: Option<u64>,
    /// GP token (re)assignment period (32 μs default, §5.1).
    pub token_update_period: Time,
    /// Consecutive RTT-scale violations of the minimum bandwidth before a
    /// migration is triggered (5 RTTs, §3.5).
    pub violation_rtts: u32,
    /// Upper bound N of the random migration freeze window [1, N] RTTs
    /// (§3.5 / Fig 18: [1, 10]).
    pub freeze_rtts_max: u64,
    /// How long a persistently better path must be observed before a
    /// work-conservation migration (30 s, §3.5).
    pub better_path_hold: Time,
    /// Probe-loss timeout in baseRTTs (8, §4.1).
    pub probe_timeout_rtts: u64,
    /// Enable the two-stage bounded-latency admission of §3.4.
    /// `false` gives the paper's μFAB′ ablation (Fig 12, Fig 16).
    pub bounded_latency: bool,
    /// Enable the reorder-free migration option of §3.5 (probe-only first
    /// RTT on the new path).
    pub reorder_free: bool,
    /// Number of candidate underlay paths a pair randomly samples (§3.5).
    pub candidate_paths: usize,
    /// Number of WFQ weight levels in the packet scheduler (8, §4.1).
    pub wfq_levels: u8,
    /// Floor for the admission window in MTUs. May be fractional:
    /// sub-MTU windows are enforced by pacing (one packet per
    /// window/baseRTT interval), as the FPGA packet scheduler does.
    pub min_window_mtus: f64,
    /// Retransmission timeout in baseRTTs.
    pub rto_rtts: u64,
    /// Idle time after which a pair deregisters with a finish probe.
    pub idle_finish: Time,
    /// μFAB-C idle-pair cleanup period (10 s in the paper's deployment,
    /// §4.2; experiments shorten it).
    pub core_cleanup_period: Time,
    /// Counting-Bloom-filter memory per egress port (20 KB, §4.2).
    pub bloom_bytes: usize,
    /// How often to probe *alternative* candidate paths for the
    /// work-conservation trigger (kept slow to bound overhead).
    pub alt_probe_period: Time,
    /// Typical fabric RTT, used to scale rate-estimator time constants
    /// (the per-pair baseRTT is computed exactly from the topology).
    pub rtt_scale: Time,
    /// Cap on shortest-path enumeration when sampling candidates.
    pub path_enum_cap: usize,
    /// Per-response smoothing gain of the Eqn-3 claim update (responses
    /// arrive every L_m bytes, i.e. many times per RTT; the claim should
    /// integrate roughly once per RTT — Appendix C).
    pub claim_gain: f64,
}

impl Default for UfabConfig {
    fn default() -> Self {
        Self {
            target_utilization: 0.95,
            probe_lm_bytes: 4096,
            probe_period_rtts: None,
            token_update_period: 32 * US,
            violation_rtts: 5,
            freeze_rtts_max: 10,
            better_path_hold: 30 * SEC,
            probe_timeout_rtts: 8,
            bounded_latency: true,
            reorder_free: false,
            candidate_paths: 4,
            wfq_levels: 8,
            min_window_mtus: 0.1,
            rto_rtts: 16,
            idle_finish: 1 * MS,
            core_cleanup_period: 10 * SEC,
            bloom_bytes: 20 * 1024,
            alt_probe_period: 10 * MS,
            rtt_scale: 25 * US,
            path_enum_cap: 16,
            claim_gain: 0.3,
        }
    }
}

impl UfabConfig {
    /// The μFAB′ ablation: informative-core rate control without the
    /// two-stage latency bound (§5.2 "Bounded Latency").
    pub fn ufab_prime() -> Self {
        Self {
            bounded_latency: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = UfabConfig::default();
        assert_eq!(c.target_utilization, 0.95);
        assert_eq!(c.probe_lm_bytes, 4096);
        assert_eq!(c.token_update_period, 32 * US);
        assert_eq!(c.violation_rtts, 5);
        assert_eq!(c.freeze_rtts_max, 10);
        assert_eq!(c.probe_timeout_rtts, 8);
        assert_eq!(c.better_path_hold, 30 * SEC);
        assert_eq!(c.bloom_bytes, 20 * 1024);
        assert!(c.bounded_latency);
    }

    #[test]
    fn prime_disables_latency_bound() {
        assert!(!UfabConfig::ufab_prime().bounded_latency);
        assert!(UfabConfig::ufab_prime().target_utilization == 0.95);
    }
}
