//! Guarantee-Partitioning token assignment (Appendix E, Algorithm 1) and
//! the multipath token split (Appendix F, Algorithm 2).
//!
//! Every token update period (32 μs) each host partitions a VM's hose
//! tokens φ^a across its active VM-pairs:
//!
//! * the **sender** apportions tokens to fully use its hose, conveying the
//!   assignment as demand to receivers via probes;
//! * the **receiver** arbitrates incoming demands with max-min fair
//!   sharing and returns the admitted tokens in probe responses;
//! * the effective pair token is `min(sender, receiver)` (§3.2).
//!
//! μFAB's variant (vs. ElasticSwitch's GP) assigns *at least the fair
//! share* even to pairs with insufficient demand, so a pair with a sudden
//! demand burst can grow immediately; the worst case puts only double the
//! VM's tokens into the network for one RTT (Appendix E).

/// Per-pair view the sender-side assignment works on.
#[derive(Debug, Clone, Copy)]
pub struct PairTokens {
    /// Measured TX rate of the pair (bits/sec) over the last epoch.
    pub tx_bps: f64,
    /// Receiver-admitted tokens from the most recent response
    /// (`f64::INFINITY` when the receiver has not constrained the pair).
    pub phi_r: f64,
    /// Output: sender-assigned tokens φ_s.
    pub phi_s: f64,
}

impl PairTokens {
    /// A pair with measured rate `tx_bps` and receiver feedback `phi_r`.
    pub fn new(tx_bps: f64, phi_r: f64) -> Self {
        Self {
            tx_bps,
            phi_r,
            phi_s: 0.0,
        }
    }
}

/// Algorithm 1, `TokenAssignment` (sender side): distribute a VM's hose
/// tokens `phi_vm` across its active pairs.
///
/// Pairs with insufficient demand (`tx/B_u` below the fair share) still
/// receive the fair share (demand-growth boost); their spare capacity is
/// redistributed, first honouring receiver bounds in ascending order, and
/// the remainder goes to unbounded pairs.
pub fn token_assignment(phi_vm: f64, bu_bps: f64, pairs: &mut [PairTokens]) {
    let ns = pairs.len();
    if ns == 0 {
        return;
    }
    for p in pairs.iter_mut() {
        p.phi_s = 0.0;
    }
    let mut fair = phi_vm / ns as f64;
    let mut spare = 0.0;
    let mut n_demand_bounded = 0usize;
    for p in pairs.iter_mut() {
        let demand_tokens = p.tx_bps / bu_bps;
        if fair > demand_tokens {
            spare += fair - demand_tokens;
            // Bounded by demand, but the sender still admits the fair
            // share so the pair can ramp instantly (Line 7).
            p.phi_s = fair;
            n_demand_bounded += 1;
        }
    }
    let remaining = ns - n_demand_bounded;
    if remaining == 0 {
        return; // everyone demand-bounded; all hold the fair share
    }
    fair += spare / remaining as f64;
    // Receiver-bounded pass, ascending φ_r (progressive filling).
    let mut order: Vec<usize> = (0..ns).collect();
    order.sort_by(|&a, &b| {
        pairs[a]
            .phi_r
            .partial_cmp(&pairs[b].phi_r)
            .expect("NaN token")
    });
    let mut n_rx_bounded = 0usize;
    for &i in &order {
        let p = &mut pairs[i];
        if p.phi_s == 0.0 && p.phi_r < fair {
            n_rx_bounded += 1;
            let left = remaining - n_rx_bounded;
            if left > 0 {
                fair += (fair - p.phi_r) / left as f64;
            }
            p.phi_s = p.phi_r;
        }
    }
    for p in pairs.iter_mut() {
        if p.phi_s == 0.0 {
            p.phi_s = fair;
        }
    }
}

/// Algorithm 1, `TokenAdmission` (receiver side): arbitrate incoming
/// sender demands `phi_s` against the receiving VM's hose `phi_vm` with
/// max-min fair sharing.
///
/// Returns the admitted tokens φ_p per pair, in input order. Pairs whose
/// demand sits below the running fair share are *unbounded*
/// (`f64::INFINITY`, the paper's `UNBOUND`): the receiver imposes no cap,
/// letting the sender grow within its own assignment.
pub fn token_admission(phi_vm: f64, demands: &[f64]) -> Vec<f64> {
    let nr = demands.len();
    if nr == 0 {
        return Vec::new();
    }
    let mut fair = phi_vm / nr as f64;
    let mut order: Vec<usize> = (0..nr).collect();
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("NaN demand"));
    let mut out = vec![0.0f64; nr];
    let mut n_bounded = 0usize;
    for &i in &order {
        if demands[i] < fair {
            out[i] = f64::INFINITY;
            n_bounded += 1;
            let left = nr - n_bounded;
            if left > 0 {
                fair += (fair - demands[i]) / left as f64;
            }
        } else {
            out[i] = fair;
        }
    }
    out
}

/// Per-path view for the multipath split.
#[derive(Debug, Clone, Copy)]
pub struct PathTokens {
    /// Measured TX rate on the path (bits/sec).
    pub tx_bps: f64,
    /// Output: tokens assigned to the path.
    pub phi: f64,
}

/// Algorithm 2, `MultipathAssignment`: split a pair's sender tokens
/// `phi_pair` across its underlay paths — equal split for fairness, spare
/// capacity of under-demanded paths redistributed for work conservation,
/// every path keeping at least the fair share to boost demand growth.
pub fn multipath_assignment(phi_pair: f64, bu_bps: f64, paths: &mut [PathTokens]) {
    let np = paths.len();
    if np == 0 {
        return;
    }
    let fair = phi_pair / np as f64;
    let mut spare = 0.0;
    let mut n_bounded = 0usize;
    for l in paths.iter_mut() {
        l.phi = 0.0;
    }
    for l in paths.iter_mut() {
        if fair > l.tx_bps / bu_bps {
            spare += fair - l.tx_bps / bu_bps;
            l.phi = fair; // boost demand growth
            n_bounded += 1;
        }
    }
    let left = np - n_bounded;
    for l in paths.iter_mut() {
        if l.phi == 0.0 {
            l.phi = fair + spare / left as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BU: f64 = 500e6;

    fn phis(pairs: &[PairTokens]) -> Vec<f64> {
        pairs.iter().map(|p| p.phi_s).collect()
    }

    #[test]
    fn sufficient_demand_splits_equally() {
        // Fig 21a, sender a0 with three pairs, all hungry: φ/3 each.
        let mut ps = vec![PairTokens::new(10e9, f64::INFINITY); 3];
        token_assignment(9.0, BU, &mut ps);
        for p in &ps {
            assert!((p.phi_s - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn receiver_admission_matches_fig21a() {
        // Receiver a7 with hose φ = 9 tokens gets demands {3, 9}
        // (a0 sends φ/3 of 9, a4 sends φ = 9). Max-min: a0's demand 3 <
        // fair 4.5 → unbounded; a4 gets 9 − 3 = 6.
        let admitted = token_admission(9.0, &[3.0, 9.0]);
        assert!(admitted[0].is_infinite());
        assert!((admitted[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_demand_redistributes_but_keeps_fair_share() {
        // Fig 21b: one of three pairs wants only ε; it keeps the fair
        // share (growth boost) while the spare goes to the other two.
        let eps_bps = 0.1 * BU; // ε = 0.1 tokens of demand
        let mut ps = vec![
            PairTokens::new(eps_bps, f64::INFINITY),
            PairTokens::new(10e9, f64::INFINITY),
            PairTokens::new(10e9, f64::INFINITY),
        ];
        token_assignment(9.0, BU, &mut ps);
        // Bounded pair still holds φ̄ = 3.
        assert!((ps[0].phi_s - 3.0).abs() < 1e-9);
        // Others split 3 + (3 − 0.1)/2 = 4.45 each.
        assert!((ps[1].phi_s - 4.45).abs() < 1e-9);
        assert!((ps[2].phi_s - 4.45).abs() < 1e-9);
        // Worst case ≤ 2×φ^a total (Appendix E claim).
        let total: f64 = phis(&ps).iter().sum();
        assert!(total <= 2.0 * 9.0 + 1e-9);
    }

    #[test]
    fn receiver_bound_respected() {
        // Two hungry pairs, but the receiver of pair 0 admits only 1.
        let mut ps = vec![
            PairTokens::new(10e9, 1.0),
            PairTokens::new(10e9, f64::INFINITY),
        ];
        token_assignment(8.0, BU, &mut ps);
        assert!((ps[0].phi_s - 1.0).abs() < 1e-9);
        // The slack flows to pair 1: 4 + (4−1) = 7.
        assert!((ps[1].phi_s - 7.0).abs() < 1e-9);
        let total: f64 = phis(&ps).iter().sum();
        assert!((total - 8.0).abs() < 1e-9);
    }

    #[test]
    fn all_demand_bounded_keeps_fair_shares() {
        let mut ps = vec![PairTokens::new(0.0, f64::INFINITY); 4];
        token_assignment(8.0, BU, &mut ps);
        for p in &ps {
            assert!((p.phi_s - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inputs() {
        token_assignment(8.0, BU, &mut []);
        assert!(token_admission(8.0, &[]).is_empty());
        multipath_assignment(8.0, BU, &mut []);
    }

    #[test]
    fn admission_progressive_filling() {
        // Demands {1, 2, 10, 10} on hose 12: fair starts 3; 1 and 2 are
        // unbounded; the rest share (12−3)/2 = 4.5.
        let a = token_admission(12.0, &[1.0, 2.0, 10.0, 10.0]);
        assert!(a[0].is_infinite());
        assert!(a[1].is_infinite());
        assert!((a[2] - 4.5).abs() < 1e-9);
        assert!((a[3] - 4.5).abs() < 1e-9);
    }

    #[test]
    fn admission_all_hungry_equal() {
        let a = token_admission(10.0, &[100.0, 100.0]);
        assert!((a[0] - 5.0).abs() < 1e-9);
        assert!((a[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn multipath_spare_redistribution() {
        // 3 paths, path 0 can only carry 0.5 tokens worth of traffic.
        let mut ls = vec![
            PathTokens {
                tx_bps: 0.5 * BU,
                phi: 0.0,
            },
            PathTokens {
                tx_bps: 10e9,
                phi: 0.0,
            },
            PathTokens {
                tx_bps: 10e9,
                phi: 0.0,
            },
        ];
        multipath_assignment(6.0, BU, &mut ls);
        assert!((ls[0].phi - 2.0).abs() < 1e-9); // fair share kept
        assert!((ls[1].phi - 2.75).abs() < 1e-9); // 2 + 1.5/2
        assert!((ls[2].phi - 2.75).abs() < 1e-9);
    }

    #[test]
    fn multipath_single_path_gets_all() {
        let mut ls = vec![PathTokens {
            tx_bps: 0.0,
            phi: 0.0,
        }];
        multipath_assignment(5.0, BU, &mut ls);
        assert_eq!(ls[0].phi, 5.0);
    }
}
