//! # μFAB — Predictable vFabric on an Informative Data Plane
//!
//! A from-scratch Rust implementation of the SIGCOMM '22 paper's system:
//! a virtual-fabric service for multi-tenant data centers that provides
//! **minimum bandwidth guarantees**, **work conservation**, and **bounded
//! tail latency** simultaneously, converging at sub-millisecond timescales.
//!
//! The design is a fusion of an *informative core* and an *active edge*:
//!
//! * [`core_agent::UfabCore`] — μFAB-C, the switch program. At egress
//!   dequeue it reads each probe's demand (φ, w), maintains the per-link
//!   demand summaries Φ_l and W_l (two registers + a counting Bloom
//!   filter), and stamps link telemetry (capacity, queue, TX rate) into the
//!   probe (§3.6, §4.2).
//! * [`edge::UfabEdge`] — μFAB-E, the SmartNIC program. It aggregates
//!   tenant flows into VM-pairs on explicit underlay paths, runs the
//!   hierarchical bandwidth allocation of §3.3 (Eqns 1–3), the two-stage
//!   window-based traffic admission of §3.4 (bounding worst-case inflight
//!   to 3 BDP), and the qualification-aware path migration of §3.5.
//! * [`tokens`] — the Guarantee-Partitioning token assignment the edge
//!   runs every update period (Appendix E, Algorithm 1) plus the multipath
//!   token split (Appendix F, Algorithm 2).
//! * [`endpoint`] — the host transport engine (per-pair message queues,
//!   packetisation, selective-repeat reliability, delivery/FCT tracking,
//!   request/response auto-reply). Shared with the baseline transports so
//!   every system is measured identically.
//! * [`theory`] — reference allocations from Appendix C: weighted max-min
//!   waterfilling (the α→∞ limit μFAB converges to) used for "Ideal"
//!   comparisons and property tests.
//! * [`resources`] — the analytic FPGA/Tofino resource models reproducing
//!   Tables 3 and 4.
//!
//! ## Quick start
//!
//! ```
//! use ufab::{FabricSpec, UfabConfig};
//! use netsim::{NodeId, VmId};
//!
//! let mut fabric = FabricSpec::new(500e6); // B_u = 500 Mbps per token
//! let t = fabric.add_tenant("tenant-a", 2.0); // 2 tokens / VM = 1 Gbps
//! let v0 = fabric.add_vm(t, NodeId(0));
//! let v1 = fabric.add_vm(t, NodeId(1));
//! let pair = fabric.add_pair(v0, v1);
//! assert_eq!(fabric.pair_guarantee_bps(pair), 1e9);
//! let _cfg = UfabConfig::default();
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod core_agent;
pub mod edge;
pub mod endpoint;
pub mod fabric;
pub mod invariants;
pub mod resources;
pub mod theory;
pub mod tokens;

pub use config::UfabConfig;
pub use core_agent::UfabCore;
pub use edge::UfabEdge;
pub use endpoint::{AppMsg, Endpoint};
pub use fabric::{FabricSpec, PairSpec, TenantSpec, VmSpec};
