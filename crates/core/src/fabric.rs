//! The virtual-fabric specification: tenants, VMs, VM-pairs, guarantees.
//!
//! μFAB's service model is the **hose model** (§3.1): every VM of a VF can
//! send/receive at its minimum bandwidth, expressed as a number of
//! *bandwidth tokens* φ^a, each worth `B_u` bits/sec. VM-to-VM guarantees
//! are carved out of the hose dynamically by Guarantee Partitioning
//! ([`crate::tokens`]); this module is the static registry those dynamics
//! run over.

use netsim::{NodeId, PairId, TenantId, VmId};
use std::collections::HashMap;

/// A tenant (one VF).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Hose tokens per VM of this tenant (φ^a).
    pub tokens_per_vm: f64,
}

/// A VM placement.
#[derive(Debug, Clone, Copy)]
pub struct VmSpec {
    /// Physical host the VM lives on.
    pub host: NodeId,
    /// Owning tenant.
    pub tenant: TenantId,
}

/// A directional VM-to-VM pair.
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Sending VM.
    pub src: VmId,
    /// Receiving VM.
    pub dst: VmId,
}

/// The fabric registry shared (via `Rc`) by every agent in a simulation.
#[derive(Debug)]
pub struct FabricSpec {
    /// Bits/sec one token guarantees (B_u).
    pub bu_bps: f64,
    tenants: Vec<TenantSpec>,
    vms: Vec<VmSpec>,
    pairs: Vec<PairSpec>,
    reverse: HashMap<(VmId, VmId), PairId>,
}

impl FabricSpec {
    /// Create an empty fabric with the given token value B_u (bits/sec).
    ///
    /// # Panics
    /// Panics if `bu_bps` is not positive.
    pub fn new(bu_bps: f64) -> Self {
        assert!(bu_bps > 0.0, "B_u must be positive");
        Self {
            bu_bps,
            tenants: Vec::new(),
            vms: Vec::new(),
            pairs: Vec::new(),
            reverse: HashMap::new(),
        }
    }

    /// Register a tenant whose every VM holds `tokens_per_vm` hose tokens.
    pub fn add_tenant(&mut self, name: &str, tokens_per_vm: f64) -> TenantId {
        assert!(tokens_per_vm >= 0.0);
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantSpec {
            name: name.to_string(),
            tokens_per_vm,
        });
        id
    }

    /// Place a VM of `tenant` on `host`.
    pub fn add_vm(&mut self, tenant: TenantId, host: NodeId) -> VmId {
        assert!(tenant.idx() < self.tenants.len(), "unknown tenant");
        let id = VmId(self.vms.len() as u32);
        self.vms.push(VmSpec { host, tenant });
        id
    }

    /// Register a directional VM-pair (idempotent: returns the existing id
    /// if `src → dst` is already registered).
    pub fn add_pair(&mut self, src: VmId, dst: VmId) -> PairId {
        if let Some(&p) = self.reverse.get(&(src, dst)) {
            return p;
        }
        assert!(src.idx() < self.vms.len() && dst.idx() < self.vms.len());
        // Cross-tenant pairs are allowed (e.g. the EBS tasks of Fig 14,
        // where SA/BA/GC are separate "tenants" that exchange traffic):
        // the pair is accounted to the *sender's* VF for scheduling, and
        // its guarantee is the min of the two VM hoses as usual.
        let id = PairId(self.pairs.len() as u32);
        self.pairs.push(PairSpec { src, dst });
        self.reverse.insert((src, dst), id);
        id
    }

    /// Register both directions; returns `(src→dst, dst→src)`.
    pub fn add_pair_bidir(&mut self, a: VmId, b: VmId) -> (PairId, PairId) {
        (self.add_pair(a, b), self.add_pair(b, a))
    }

    /// Register `k` parallel *stripes* between the same VMs (Appendix F:
    /// a VM-pair may spread over multiple underlay paths; here each
    /// stripe is an independently path-managed fabric pair, and
    /// Guarantee Partitioning splits the hose across the active stripes
    /// exactly as Algorithm 2 splits a pair's token across paths).
    ///
    /// The first stripe is the canonical pair (`reverse_pair` resolves to
    /// it); additional stripes bypass the dedup map.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn add_striped_pairs(&mut self, src: VmId, dst: VmId, k: usize) -> Vec<PairId> {
        assert!(k >= 1, "at least one stripe");
        let mut out = vec![self.add_pair(src, dst)];
        for _ in 1..k {
            let id = PairId(self.pairs.len() as u32);
            self.pairs.push(PairSpec { src, dst });
            out.push(id);
        }
        out
    }

    /// Tenant record.
    pub fn tenant(&self, t: TenantId) -> &TenantSpec {
        &self.tenants[t.idx()]
    }

    /// VM record.
    pub fn vm(&self, v: VmId) -> &VmSpec {
        &self.vms[v.idx()]
    }

    /// Pair record.
    pub fn pair(&self, p: PairId) -> &PairSpec {
        &self.pairs[p.idx()]
    }

    /// Number of tenants.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// Number of registered pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Tenant that owns a pair.
    pub fn pair_tenant(&self, p: PairId) -> TenantId {
        self.vms[self.pairs[p.idx()].src.idx()].tenant
    }

    /// Source host of a pair.
    pub fn pair_src_host(&self, p: PairId) -> NodeId {
        self.vms[self.pairs[p.idx()].src.idx()].host
    }

    /// Destination host of a pair.
    pub fn pair_dst_host(&self, p: PairId) -> NodeId {
        self.vms[self.pairs[p.idx()].dst.idx()].host
    }

    /// The opposite-direction pair, if registered (needed for RPC
    /// auto-replies).
    pub fn reverse_pair(&self, p: PairId) -> Option<PairId> {
        let s = self.pairs[p.idx()];
        self.reverse.get(&(s.dst, s.src)).copied()
    }

    /// Hose tokens of a VM (φ^a).
    pub fn vm_tokens(&self, v: VmId) -> f64 {
        self.tenants[self.vms[v.idx()].tenant.idx()].tokens_per_vm
    }

    /// The *static* worst-case guarantee of a pair in bits/sec:
    /// `min(src hose, dst hose)·B_u`. At runtime GP divides hoses across
    /// active pairs, so the live guarantee is ≤ this.
    pub fn pair_guarantee_bps(&self, p: PairId) -> f64 {
        let s = self.pairs[p.idx()];
        self.vm_tokens(s.src).min(self.vm_tokens(s.dst)) * self.bu_bps
    }

    /// All pairs originating at a VM.
    pub fn pairs_from_vm(&self, v: VmId) -> Vec<PairId> {
        (0..self.pairs.len())
            .filter(|&i| self.pairs[i].src == v)
            .map(|i| PairId(i as u32))
            .collect()
    }

    /// All pairs terminating at a VM.
    pub fn pairs_to_vm(&self, v: VmId) -> Vec<PairId> {
        (0..self.pairs.len())
            .filter(|&i| self.pairs[i].dst == v)
            .map(|i| PairId(i as u32))
            .collect()
    }

    /// All VMs placed on `host`.
    pub fn vms_on_host(&self, host: NodeId) -> Vec<VmId> {
        (0..self.vms.len())
            .filter(|&i| self.vms[i].host == host)
            .map(|i| VmId(i as u32))
            .collect()
    }

    /// Pairs whose source VM lives on `host` (the set a μFAB-E instance
    /// manages).
    pub fn pairs_from_host(&self, host: NodeId) -> Vec<PairId> {
        (0..self.pairs.len())
            .filter(|&i| self.vms[self.pairs[i].src.idx()].host == host)
            .map(|i| PairId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_is_min_of_hoses() {
        let mut f = FabricSpec::new(500e6);
        let big = f.add_tenant("big", 4.0);
        let v0 = f.add_vm(big, NodeId(0));
        let v1 = f.add_vm(big, NodeId(1));
        let p = f.add_pair(v0, v1);
        assert_eq!(f.pair_guarantee_bps(p), 2e9);
        assert_eq!(f.pair_tenant(p), big);
        assert_eq!(f.pair_src_host(p), NodeId(0));
        assert_eq!(f.pair_dst_host(p), NodeId(1));
    }

    #[test]
    fn add_pair_idempotent_and_reverse() {
        let mut f = FabricSpec::new(1e9);
        let t = f.add_tenant("t", 1.0);
        let a = f.add_vm(t, NodeId(0));
        let b = f.add_vm(t, NodeId(1));
        let (ab, ba) = f.add_pair_bidir(a, b);
        assert_ne!(ab, ba);
        assert_eq!(f.add_pair(a, b), ab);
        assert_eq!(f.reverse_pair(ab), Some(ba));
        assert_eq!(f.reverse_pair(ba), Some(ab));
        assert_eq!(f.n_pairs(), 2);
    }

    #[test]
    fn reverse_pair_missing() {
        let mut f = FabricSpec::new(1e9);
        let t = f.add_tenant("t", 1.0);
        let a = f.add_vm(t, NodeId(0));
        let b = f.add_vm(t, NodeId(1));
        let ab = f.add_pair(a, b);
        assert_eq!(f.reverse_pair(ab), None);
    }

    #[test]
    fn host_and_vm_lookups() {
        let mut f = FabricSpec::new(1e9);
        let t1 = f.add_tenant("t1", 1.0);
        let t2 = f.add_tenant("t2", 2.0);
        let a = f.add_vm(t1, NodeId(5));
        let b = f.add_vm(t1, NodeId(6));
        let c = f.add_vm(t2, NodeId(5));
        let ab = f.add_pair(a, b);
        assert_eq!(f.vms_on_host(NodeId(5)), vec![a, c]);
        assert_eq!(f.pairs_from_host(NodeId(5)), vec![ab]);
        assert_eq!(f.pairs_from_vm(a), vec![ab]);
        assert_eq!(f.pairs_to_vm(b), vec![ab]);
        assert!(f.pairs_to_vm(a).is_empty());
        assert_eq!(f.n_tenants(), 2);
        assert_eq!(f.n_vms(), 3);
    }

    #[test]
    fn cross_tenant_pair_allowed_and_sender_accounted() {
        let mut f = FabricSpec::new(1e9);
        let t1 = f.add_tenant("t1", 2.0);
        let t2 = f.add_tenant("t2", 6.0);
        let a = f.add_vm(t1, NodeId(0));
        let b = f.add_vm(t2, NodeId(1));
        let p = f.add_pair(a, b);
        assert_eq!(f.pair_tenant(p), t1); // sender's VF
        assert_eq!(f.pair_guarantee_bps(p), 2e9); // min of hoses
    }
}
