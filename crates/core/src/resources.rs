//! Analytic hardware resource models reproducing Tables 3 and 4.
//!
//! The paper reports static resource accounting of the two prototypes:
//! μFAB-E on a Xilinx Alveo U200 (Table 3) and μFAB-C on an Intel Barefoot
//! Tofino (Table 4). Without the hardware we model the same scaling laws —
//! per-pair state linear in pair count on top of fixed pipeline cost — and
//! calibrate the coefficients so the paper's operating points reproduce
//! its numbers exactly.

/// One row of Table 3: per-module FPGA resource shares (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaRow {
    /// Module name.
    pub module: &'static str,
    /// Lookup tables.
    pub lut_pct: f64,
    /// Flip-flop registers.
    pub reg_pct: f64,
    /// Block RAM.
    pub bram_pct: f64,
    /// UltraRAM.
    pub uram_pct: f64,
}

/// Table 3 at the paper's operating point (8 K VM-pairs, 1 K tenants).
pub const FPGA_TABLE3: [FpgaRow; 6] = [
    FpgaRow {
        module: "Packet Scheduler",
        lut_pct: 0.8,
        reg_pct: 1.1,
        bram_pct: 0.8,
        uram_pct: 5.7,
    },
    FpgaRow {
        module: "Context Tables",
        lut_pct: 0.2,
        reg_pct: 0.2,
        bram_pct: 4.6,
        uram_pct: 3.1,
    },
    FpgaRow {
        module: "Path Monitor",
        lut_pct: 0.9,
        reg_pct: 0.7,
        bram_pct: 4.8,
        uram_pct: 0.6,
    },
    FpgaRow {
        module: "TX/RX pipes",
        lut_pct: 0.3,
        reg_pct: 0.1,
        bram_pct: 1.2,
        uram_pct: 0.0,
    },
    FpgaRow {
        module: "Vendor Modules",
        lut_pct: 5.5,
        reg_pct: 3.6,
        bram_pct: 5.0,
        uram_pct: 0.0,
    },
    FpgaRow {
        module: "Total",
        lut_pct: 7.6,
        reg_pct: 5.8,
        bram_pct: 16.4,
        uram_pct: 9.5,
    },
];

/// Pair count Table 3 was measured at.
pub const FPGA_BASE_PAIRS: u64 = 8_192;

/// Scale the FPGA *memory* resources to a different supported pair count.
///
/// Per-pair state lives in Context Tables (BRAM/URAM) and the Packet
/// Scheduler's queues (URAM); logic (LUT/registers) is pipeline-fixed.
/// The paper's headline: "supports 8K VM-pairs and 1K tenants with up to
/// 10 % extra hardware resources".
pub fn fpga_at_pairs(pairs: u64) -> FpgaRow {
    let total = FPGA_TABLE3[5];
    let vendor = FPGA_TABLE3[4];
    let scale = pairs as f64 / FPGA_BASE_PAIRS as f64;
    // μFAB's own (non-vendor) share scales in memory, stays fixed in logic.
    FpgaRow {
        module: "Total",
        lut_pct: total.lut_pct,
        reg_pct: total.reg_pct,
        bram_pct: vendor.bram_pct + (total.bram_pct - vendor.bram_pct) * scale,
        uram_pct: vendor.uram_pct + (total.uram_pct - vendor.uram_pct) * scale,
    }
}

/// One row of Table 4: Tofino resource shares (percent) at a pair count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TofinoUsage {
    /// Distinct VM-pairs supported.
    pub pairs: u64,
    /// Match crossbar.
    pub match_crossbar_pct: f64,
    /// SRAM.
    pub sram_pct: f64,
    /// TCAM.
    pub tcam_pct: f64,
    /// VLIW action slots.
    pub vliw_pct: f64,
    /// Hash distribution bits.
    pub hash_bits_pct: f64,
    /// Stateful ALUs.
    pub stateful_alu_pct: f64,
    /// Packet header vector.
    pub phv_pct: f64,
}

/// Table 4 anchor points (20 K / 40 K / 80 K pairs).
pub const TOFINO_TABLE4: [TofinoUsage; 3] = [
    TofinoUsage {
        pairs: 20_000,
        match_crossbar_pct: 8.64,
        sram_pct: 17.29,
        tcam_pct: 6.25,
        vliw_pct: 18.23,
        hash_bits_pct: 17.03,
        stateful_alu_pct: 47.92,
        phv_pct: 20.05,
    },
    TofinoUsage {
        pairs: 40_000,
        match_crossbar_pct: 8.64,
        sram_pct: 17.71,
        tcam_pct: 6.25,
        vliw_pct: 18.23,
        hash_bits_pct: 17.05,
        stateful_alu_pct: 47.92,
        phv_pct: 20.05,
    },
    TofinoUsage {
        pairs: 80_000,
        match_crossbar_pct: 8.64,
        sram_pct: 18.75,
        tcam_pct: 6.25,
        vliw_pct: 18.23,
        hash_bits_pct: 17.07,
        stateful_alu_pct: 47.92,
        phv_pct: 20.05,
    },
];

/// Model Tofino usage at an arbitrary pair count.
///
/// Only SRAM (Bloom-filter banks + registers) and hash bits grow with the
/// pair count; the linear coefficients are fitted to the 20 K → 80 K span
/// of Table 4. Everything else is pipeline-fixed — the paper's point that
/// "with the increase in the scale of VM-pairs, the hardware resource
/// consumption only increases slightly".
pub fn tofino_at_pairs(pairs: u64) -> TofinoUsage {
    let lo = TOFINO_TABLE4[0];
    let hi = TOFINO_TABLE4[2];
    let span = (hi.pairs - lo.pairs) as f64;
    let sram_slope = (hi.sram_pct - lo.sram_pct) / span;
    let hash_slope = (hi.hash_bits_pct - lo.hash_bits_pct) / span;
    let d = pairs as f64 - lo.pairs as f64;
    TofinoUsage {
        pairs,
        sram_pct: (lo.sram_pct + sram_slope * d).max(0.0),
        hash_bits_pct: (lo.hash_bits_pct + hash_slope * d).max(0.0),
        ..lo
    }
}

/// Bloom-filter sizing from §4.2: bytes of filter memory needed so `pairs`
/// distinct VM-pairs stay under `fp_target` false positives with the
/// 2-bank filter (`fp = (1 − e^(−n/m))²`, m bits per bank).
pub fn bloom_bytes_for(pairs: u64, fp_target: f64) -> usize {
    assert!((0.0..1.0).contains(&fp_target) && fp_target > 0.0);
    // fp = p² with p = 1 − e^(−n/m)  ⇒  m = −n / ln(1 − √fp).
    let p = fp_target.sqrt();
    let m_bits = -(pairs as f64) / (1.0 - p).ln();
    // Two banks, 8 bits per byte.
    (2.0 * m_bits / 8.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_reproduces_table3_at_base() {
        let r = fpga_at_pairs(FPGA_BASE_PAIRS);
        let t = FPGA_TABLE3[5];
        assert!((r.bram_pct - t.bram_pct).abs() < 1e-9);
        assert!((r.uram_pct - t.uram_pct).abs() < 1e-9);
        assert_eq!(r.lut_pct, t.lut_pct);
    }

    #[test]
    fn fpga_memory_scales_logic_fixed() {
        let big = fpga_at_pairs(2 * FPGA_BASE_PAIRS);
        let base = fpga_at_pairs(FPGA_BASE_PAIRS);
        assert!(big.bram_pct > base.bram_pct);
        assert!(big.uram_pct > base.uram_pct);
        assert_eq!(big.lut_pct, base.lut_pct);
        assert_eq!(big.reg_pct, base.reg_pct);
    }

    #[test]
    fn table3_totals_are_sums() {
        let modules = &FPGA_TABLE3[..5];
        let total = FPGA_TABLE3[5];
        let sum_lut: f64 = modules.iter().map(|m| m.lut_pct).sum();
        // Paper rounds per-module numbers; allow 0.3 pp slack.
        assert!((sum_lut - total.lut_pct).abs() < 0.31, "{sum_lut}");
        let sum_bram: f64 = modules.iter().map(|m| m.bram_pct).sum();
        assert!((sum_bram - total.bram_pct).abs() < 0.31, "{sum_bram}");
    }

    #[test]
    fn tofino_reproduces_anchor_points() {
        for anchor in TOFINO_TABLE4 {
            let m = tofino_at_pairs(anchor.pairs);
            assert!(
                (m.sram_pct - anchor.sram_pct).abs() < 0.25,
                "sram at {}: {} vs {}",
                anchor.pairs,
                m.sram_pct,
                anchor.sram_pct
            );
            assert_eq!(m.stateful_alu_pct, anchor.stateful_alu_pct);
            assert_eq!(m.phv_pct, anchor.phv_pct);
        }
    }

    #[test]
    fn tofino_growth_is_slight() {
        // 4x the pairs adds < 2 pp of SRAM — the paper's scalability claim.
        let lo = tofino_at_pairs(20_000);
        let hi = tofino_at_pairs(80_000);
        assert!(hi.sram_pct - lo.sram_pct < 2.0);
    }

    #[test]
    fn bloom_sizing_matches_paper_point() {
        // §4.2: 20 KB supports 20 K pairs at < 5 % FP.
        let bytes = bloom_bytes_for(20_000, 0.05);
        assert!(
            (15_000..25_000).contains(&bytes),
            "sized {bytes} bytes, paper deploys 20 KB"
        );
    }

    #[test]
    #[should_panic]
    fn bloom_sizing_rejects_bad_target() {
        bloom_bytes_for(100, 0.0);
    }
}
