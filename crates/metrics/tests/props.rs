//! Property-based tests for the statistics primitives.

use metrics::{DissatisfactionMeter, OnlineStats, Percentiles, RateSeries};
use proptest::prelude::*;

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(samples in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut p = Percentiles::new();
        for &s in &samples {
            p.add(s);
        }
        let lo = p.min().unwrap();
        let hi = p.max().unwrap();
        let mut prev = lo;
        for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = p.percentile(q).unwrap();
            prop_assert!(v >= prev - 1e-9, "p{q} went down");
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// Welford mean/stddev agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(samples in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.add(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Splitting a stream across two accumulators and merging equals the
    /// single-stream result.
    #[test]
    fn online_stats_merge_associative(
        a in prop::collection::vec(-1e6f64..1e6, 1..100),
        b in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            whole.add(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &a { left.add(x); }
        for &x in &b { right.add(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    /// A rate series preserves total bytes regardless of arrival pattern.
    #[test]
    fn rate_series_conserves_bytes(
        events in prop::collection::vec((0u64..1_000_000_000, 1u64..1_000_000), 1..200),
    ) {
        let mut s = RateSeries::new(1_000_000);
        let mut total = 0u64;
        for &(t, b) in &events {
            s.add(t, b);
            total += b;
        }
        prop_assert_eq!(s.total_bytes(), total);
        // Average over the full span equals total/span.
        let span = 1_000_000_000u64;
        let avg = s.avg_rate(0, span);
        let expect = total as f64 * 8.0 * 1e9 / span as f64;
        prop_assert!((avg - expect).abs() / expect.max(1.0) < 1e-9);
    }

    /// The dissatisfaction ratio always lands in [0, 1].
    #[test]
    fn dissatisfaction_in_unit_range(
        obs in prop::collection::vec((0.0f64..20e9, 0.0f64..10e9, 0.0f64..20e9), 1..100),
    ) {
        let mut m = DissatisfactionMeter::new();
        for (i, &(rate, guar, demand)) in obs.iter().enumerate() {
            m.observe(i as u64 * 1_000_000, 1_000_000, &[(rate, guar, demand)]);
        }
        prop_assert!(m.ratio() >= 0.0);
        prop_assert!(m.ratio() <= 1.0 + 1e-9);
    }
}
