//! Measurement primitives for the μFAB reproduction.
//!
//! This crate is deliberately dependency-free: it defines the statistics,
//! time-series, and recording machinery that both the simulator agents and
//! the experiment harness use to report results. Time is represented as
//! `u64` nanoseconds throughout (matching `netsim::Time`), but this crate
//! does not depend on the simulator so that it can also be used standalone
//! (e.g. in the analytic theory tests).
//!
//! Main pieces:
//!
//! * [`stats`] — streaming moments, exact percentiles, CDF export.
//! * [`timeseries`] — per-entity rate series sampled on a fixed grid.
//! * [`recorder`] — the shared [`Recorder`](recorder::Recorder) sink that
//!   edge agents write delivered bytes / RTT samples / flow completions into
//!   and that experiments read results out of.
//! * [`convergence`] — convergence-time detection and the paper's
//!   *bandwidth dissatisfaction ratio* (§5.2, Fig 11d / Fig 17a).
//! * [`fairness`] — Jain's index and weighted-share error metrics.
//! * [`table`] — plain-text table / CSV emission used by the `repro` binary.

#![deny(missing_docs)]

pub mod convergence;
pub mod fairness;
pub mod recorder;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use convergence::{ConvergenceDetector, DissatisfactionMeter};
pub use fairness::{jain_index, weighted_share_error};
pub use recorder::{Completion, Recorder, RttSample, SharedRecorder};
pub use stats::{Cdf, OnlineStats, Percentiles};
pub use timeseries::{RateSeries, SeriesSet};

/// Nanoseconds, mirroring `netsim::Time` without the dependency.
pub type Nanos = u64;

/// One second in nanoseconds.
pub const SEC: Nanos = 1_000_000_000;
/// One millisecond in nanoseconds.
pub const MS: Nanos = 1_000_000;
/// One microsecond in nanoseconds.
pub const US: Nanos = 1_000;

/// Convert a byte count observed over `dt` nanoseconds into bits/second.
///
/// Returns 0.0 for an empty interval rather than dividing by zero.
pub fn bps(bytes: u64, dt: Nanos) -> f64 {
    if dt == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 * 1e9 / dt as f64
}

/// Convert bits/second into Gbit/s for display.
pub fn gbps(rate_bps: f64) -> f64 {
    rate_bps / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bps_converts() {
        // 125 MB in one second = 1 Gbps.
        assert_eq!(bps(125_000_000, SEC), 1e9);
        assert_eq!(bps(0, SEC), 0.0);
        assert_eq!(bps(100, 0), 0.0);
    }

    #[test]
    fn gbps_scales() {
        assert_eq!(gbps(2.5e9), 2.5);
    }
}
