//! The shared measurement sink written by edge agents.
//!
//! Every transport implementation in this repository (μFAB and the
//! baselines) receives a [`SharedRecorder`] at construction and reports the
//! same events into it: bytes delivered per VM-pair, per-packet RTT samples,
//! and message/flow completions. Experiments then read rates, latency
//! distributions and FCTs out of one place regardless of which system ran.
//!
//! The simulator is single-threaded, so `Rc<RefCell<…>>` is the appropriate
//! sharing primitive (no locking, deterministic).

use crate::stats::Percentiles;
use crate::timeseries::SeriesSet;
use crate::Nanos;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A completed application message (the paper's "flow"/"query"/"task").
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Flow / message identifier assigned by the workload.
    pub flow: u64,
    /// VM-pair the message travelled on.
    pub pair: u32,
    /// Message size in bytes.
    pub bytes: u64,
    /// Submission time at the sender.
    pub start: Nanos,
    /// Time the final byte was delivered at the receiver.
    pub end: Nanos,
    /// Workload-defined tag (e.g. distinguishes request vs. response,
    /// SA vs. BA vs. GC traffic in the EBS model).
    pub tag: u32,
}

impl Completion {
    /// Flow completion time in nanoseconds.
    pub fn fct(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// One RTT observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttSample {
    /// VM-pair that measured it.
    pub pair: u32,
    /// When the ACK arrived.
    pub at: Nanos,
    /// Measured round-trip in nanoseconds.
    pub rtt: Nanos,
}

/// Central sink for everything the experiments measure.
#[derive(Debug)]
pub struct Recorder {
    /// Delivered goodput per VM-pair (receiver side).
    pub pair_rates: SeriesSet<u32>,
    /// Delivered goodput per tenant/VF.
    pub tenant_rates: SeriesSet<u32>,
    /// All data-packet RTT samples (sender side, per ACK).
    pub rtts: Percentiles,
    /// RTT samples grouped per tenant.
    pub tenant_rtts: BTreeMap<u32, Percentiles>,
    /// Completed messages, in completion order.
    pub completions: Vec<Completion>,
    /// Completions not yet consumed by a closed-loop driver.
    unconsumed: usize,
    /// Total data bytes delivered (all pairs).
    pub delivered_bytes: u64,
    /// Total probe/response bytes put on the wire (for Fig 15b overhead).
    pub probe_bytes: u64,
    /// Count of data packets retransmitted after loss.
    pub retransmits: u64,
    /// Count of path migrations performed (Fig 18a/b).
    pub path_migrations: u64,
    /// Per-pair cumulative delivered bytes.
    pub pair_bytes: BTreeMap<u32, u64>,
}

impl Recorder {
    /// Create a recorder whose rate series use `bin_ns`-wide bins.
    pub fn new(bin_ns: Nanos) -> Self {
        Self {
            pair_rates: SeriesSet::new(bin_ns),
            tenant_rates: SeriesSet::new(bin_ns),
            rtts: Percentiles::new(),
            tenant_rtts: BTreeMap::new(),
            completions: Vec::new(),
            unconsumed: 0,
            delivered_bytes: 0,
            probe_bytes: 0,
            retransmits: 0,
            path_migrations: 0,
            pair_bytes: BTreeMap::new(),
        }
    }

    /// Record `bytes` of application payload delivered on `pair` belonging
    /// to `tenant` at time `now`.
    pub fn delivered(&mut self, now: Nanos, pair: u32, tenant: u32, bytes: u64) {
        self.pair_rates.add(pair, now, bytes);
        self.tenant_rates.add(tenant, now, bytes);
        self.delivered_bytes += bytes;
        *self.pair_bytes.entry(pair).or_insert(0) += bytes;
    }

    /// Record one RTT sample.
    pub fn rtt(&mut self, now: Nanos, pair: u32, tenant: u32, rtt: Nanos) {
        self.rtts.add(rtt as f64);
        self.tenant_rtts.entry(tenant).or_default().add(rtt as f64);
        let _ = (now, pair);
    }

    /// Record a completed message.
    pub fn complete(&mut self, c: Completion) {
        self.completions.push(c);
    }

    /// Drain completions that arrived since the previous call. Closed-loop
    /// workload drivers poll this between simulation slices.
    pub fn drain_new_completions(&mut self) -> Vec<Completion> {
        let out = self.completions[self.unconsumed..].to_vec();
        self.unconsumed = self.completions.len();
        out
    }

    /// Cumulative delivered bytes for one pair.
    pub fn pair_delivered(&self, pair: u32) -> u64 {
        self.pair_bytes.get(&pair).copied().unwrap_or(0)
    }
}

/// Shared handle to a [`Recorder`].
pub type SharedRecorder = Rc<RefCell<Recorder>>;

/// Construct a fresh shared recorder.
pub fn shared(bin_ns: Nanos) -> SharedRecorder {
    Rc::new(RefCell::new(Recorder::new(bin_ns)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MS, US};

    #[test]
    fn delivery_feeds_both_series() {
        let mut r = Recorder::new(MS);
        r.delivered(0, 7, 1, 1000);
        r.delivered(MS, 7, 1, 500);
        r.delivered(0, 8, 1, 200);
        assert_eq!(r.delivered_bytes, 1700);
        assert_eq!(r.pair_delivered(7), 1500);
        assert_eq!(r.pair_rates.get(&7).unwrap().total_bytes(), 1500);
        assert_eq!(r.tenant_rates.get(&1).unwrap().total_bytes(), 1700);
    }

    #[test]
    fn completion_fct() {
        let c = Completion {
            flow: 1,
            pair: 0,
            bytes: 64_000,
            start: 10 * US,
            end: 110 * US,
            tag: 0,
        };
        assert_eq!(c.fct(), 100 * US);
    }

    #[test]
    fn drain_new_completions_is_incremental() {
        let mut r = Recorder::new(MS);
        let mk = |flow| Completion {
            flow,
            pair: 0,
            bytes: 1,
            start: 0,
            end: 1,
            tag: 0,
        };
        r.complete(mk(1));
        r.complete(mk(2));
        let first = r.drain_new_completions();
        assert_eq!(first.len(), 2);
        assert!(r.drain_new_completions().is_empty());
        r.complete(mk(3));
        let second = r.drain_new_completions();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].flow, 3);
        // Full history still retained for end-of-run analysis.
        assert_eq!(r.completions.len(), 3);
    }

    #[test]
    fn rtt_grouped_by_tenant() {
        let mut r = Recorder::new(MS);
        r.rtt(0, 1, 10, 24_000);
        r.rtt(0, 2, 10, 30_000);
        r.rtt(0, 3, 11, 100_000);
        assert_eq!(r.rtts.count(), 3);
        assert_eq!(r.tenant_rtts[&10].count(), 2);
        assert_eq!(r.tenant_rtts[&11].count(), 1);
    }
}
