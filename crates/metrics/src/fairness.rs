//! Fairness indices.
//!
//! μFAB's allocation target is *weighted* sharing: link capacity split
//! proportionally to bandwidth tokens (§3.3, Eqn 1). The helpers here
//! quantify how close a measured allocation comes to that target.

/// Jain's fairness index over raw rates: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly equal; `1/n` means one entity has everything.
/// Returns 1.0 for empty or all-zero input (vacuously fair).
pub fn jain_index(rates: &[f64]) -> f64 {
    let n = rates.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sq)
}

/// Jain's index computed on weight-normalised rates `x_i / w_i`, which is
/// the right fairness notion for token-proportional sharing.
///
/// Entries with non-positive weight are skipped.
pub fn weighted_jain_index(rates: &[f64], weights: &[f64]) -> f64 {
    let normalised: Vec<f64> = rates
        .iter()
        .zip(weights)
        .filter(|(_, w)| **w > 0.0)
        .map(|(x, w)| x / w)
        .collect();
    jain_index(&normalised)
}

/// Maximum relative deviation between an observed allocation and a target
/// allocation: `max_i |x_i − t_i| / t_i` over entries with `t_i > 0`.
///
/// Returns 0.0 when there is nothing to compare.
pub fn weighted_share_error(observed: &[f64], target: &[f64]) -> f64 {
    observed
        .iter()
        .zip(target)
        .filter(|(_, t)| **t > 0.0)
        .map(|(x, t)| (x - t).abs() / t)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn weighted_jain_proportional_is_fair() {
        // Rates exactly proportional to weights 1:2:5 → index 1.
        let idx = weighted_jain_index(&[1.0, 2.0, 5.0], &[1.0, 2.0, 5.0]);
        assert!((idx - 1.0).abs() < 1e-12);
        // Equal rates under unequal weights are NOT weighted-fair.
        let idx2 = weighted_jain_index(&[1.0, 1.0, 1.0], &[1.0, 2.0, 5.0]);
        assert!(idx2 < 0.8);
    }

    #[test]
    fn share_error_picks_worst() {
        let e = weighted_share_error(&[0.9, 2.0], &[1.0, 1.0]);
        assert!((e - 1.0).abs() < 1e-12);
        assert_eq!(weighted_share_error(&[], &[]), 0.0);
        // Zero targets skipped.
        assert_eq!(weighted_share_error(&[5.0], &[0.0]), 0.0);
    }
}
