//! Convergence-time detection and bandwidth-dissatisfaction accounting.
//!
//! Two paper-specific metrics live here:
//!
//! * **Convergence time** (Fig 18a/b, §1's "sub-millisecond convergence"):
//!   the delay between a disturbance (VF join, failure) and the first moment
//!   every tracked entity stays within a tolerance band around its target
//!   for a configurable hold duration.
//! * **Bandwidth dissatisfaction ratio** (Fig 11d, Fig 17a): the amount of
//!   minimum-bandwidth violation accumulated over time, normalised by the
//!   total guaranteed volume over the same interval.

use crate::Nanos;

/// Detects when a set of observed values has converged to targets.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    tolerance: f64,
    hold: Nanos,
    start: Nanos,
    in_band_since: Option<Nanos>,
    converged_at: Option<Nanos>,
}

impl ConvergenceDetector {
    /// `tolerance` is relative (0.1 = ±10 % of target); `hold` is how long
    /// all values must stay in band; `start` is the disturbance time.
    pub fn new(start: Nanos, tolerance: f64, hold: Nanos) -> Self {
        Self {
            tolerance,
            hold,
            start,
            in_band_since: None,
            converged_at: None,
        }
    }

    /// Feed one sample round: `pairs` is `(observed, target)` per entity.
    /// Entities with `target == 0` are ignored. Call with monotonically
    /// increasing `now`.
    pub fn observe(&mut self, now: Nanos, pairs: &[(f64, f64)]) {
        if self.converged_at.is_some() {
            return;
        }
        let all_in_band = pairs
            .iter()
            .filter(|(_, t)| *t > 0.0)
            .all(|(o, t)| (o - t).abs() <= self.tolerance * t);
        if all_in_band {
            let since = *self.in_band_since.get_or_insert(now);
            if now.saturating_sub(since) >= self.hold {
                self.converged_at = Some(since);
            }
        } else {
            self.in_band_since = None;
        }
    }

    /// Time from the disturbance to entering the (held) band, if converged.
    pub fn convergence_time(&self) -> Option<Nanos> {
        self.converged_at.map(|t| t.saturating_sub(self.start))
    }

    /// Whether convergence has been declared.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// Integrates minimum-bandwidth violations over time.
///
/// Per sample interval `dt`, for each VF with demand, the violation is
/// `max(0, min(guarantee, demand) − rate) · dt` bytes; the dissatisfaction
/// ratio is total violated volume over total entitled volume. A VF with
/// insufficient demand is only entitled to its demand, matching the paper's
/// definition ("minimum bandwidth violation over the total traffic volume").
#[derive(Debug, Clone, Default)]
pub struct DissatisfactionMeter {
    violated_bytes: f64,
    entitled_bytes: f64,
    per_interval: Vec<(Nanos, f64)>,
}

impl DissatisfactionMeter {
    /// Create an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval. `vfs` holds `(rate_bps, guarantee_bps,
    /// demand_bps)` per VF active in this interval.
    pub fn observe(&mut self, now: Nanos, dt: Nanos, vfs: &[(f64, f64, f64)]) {
        let dt_s = dt as f64 / 1e9;
        let mut violated = 0.0;
        let mut entitled = 0.0;
        for &(rate, guar, demand) in vfs {
            let entitlement = guar.min(demand);
            if entitlement <= 0.0 {
                continue;
            }
            entitled += entitlement * dt_s / 8.0;
            violated += (entitlement - rate).max(0.0) * dt_s / 8.0;
        }
        self.violated_bytes += violated;
        self.entitled_bytes += entitled;
        let ratio = if entitled > 0.0 {
            violated / entitled
        } else {
            0.0
        };
        self.per_interval.push((now, ratio));
    }

    /// Overall dissatisfaction ratio in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.entitled_bytes <= 0.0 {
            0.0
        } else {
            self.violated_bytes / self.entitled_bytes
        }
    }

    /// Per-interval `(time, ratio)` curve (Fig 11d).
    pub fn curve(&self) -> &[(Nanos, f64)] {
        &self.per_interval
    }

    /// Total violated volume in bytes.
    pub fn violated_bytes(&self) -> f64 {
        self.violated_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MS, US};

    #[test]
    fn detects_convergence_after_hold() {
        let mut d = ConvergenceDetector::new(0, 0.1, 500 * US);
        // Out of band for 1 ms.
        for i in 0..10 {
            d.observe(i * 100 * US, &[(0.5, 1.0)]);
        }
        assert!(!d.converged());
        // In band from t=1 ms.
        for i in 10..30 {
            d.observe(i * 100 * US, &[(0.95, 1.0)]);
        }
        assert!(d.converged());
        assert_eq!(d.convergence_time(), Some(MS));
    }

    #[test]
    fn band_exit_resets_hold() {
        let mut d = ConvergenceDetector::new(0, 0.1, 300 * US);
        d.observe(0, &[(1.0, 1.0)]);
        d.observe(100 * US, &[(1.0, 1.0)]);
        d.observe(200 * US, &[(0.2, 1.0)]); // leaves band before hold elapses
        d.observe(300 * US, &[(1.0, 1.0)]);
        d.observe(400 * US, &[(1.0, 1.0)]);
        assert!(!d.converged());
        d.observe(600 * US, &[(1.0, 1.0)]);
        assert!(d.converged());
        assert_eq!(d.convergence_time(), Some(300 * US));
    }

    #[test]
    fn zero_targets_ignored() {
        let mut d = ConvergenceDetector::new(0, 0.1, 0);
        d.observe(10, &[(5.0, 0.0), (1.0, 1.0)]);
        assert!(d.converged());
    }

    #[test]
    fn dissatisfaction_halves() {
        let mut m = DissatisfactionMeter::new();
        // One VF: guaranteed 1 Gbps, demand unlimited, gets 0.5 Gbps.
        m.observe(0, MS, &[(0.5e9, 1e9, f64::INFINITY)]);
        assert!((m.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insufficient_demand_not_a_violation() {
        let mut m = DissatisfactionMeter::new();
        // Guaranteed 1 Gbps but only wants 0.2 Gbps and gets it.
        m.observe(0, MS, &[(0.2e9, 1e9, 0.2e9)]);
        assert_eq!(m.ratio(), 0.0);
    }

    #[test]
    fn over_delivery_not_negative() {
        let mut m = DissatisfactionMeter::new();
        // Work conservation: got 3 Gbps with a 1 Gbps guarantee.
        m.observe(0, MS, &[(3e9, 1e9, f64::INFINITY)]);
        assert_eq!(m.ratio(), 0.0);
        assert!(m.violated_bytes() == 0.0);
    }

    #[test]
    fn empty_meter_ratio_zero() {
        let m = DissatisfactionMeter::new();
        assert_eq!(m.ratio(), 0.0);
    }
}
