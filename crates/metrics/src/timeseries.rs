//! Fixed-grid rate time series.
//!
//! The rate-evolution plots of the paper (Fig 11a–c, Fig 12a, Fig 15a,
//! Fig 16a, Fig 20b) are throughput-vs-time curves sampled on a uniform
//! grid. [`RateSeries`] accumulates delivered bytes into grid bins and
//! converts them to Gbps on export; [`SeriesSet`] keys one series per entity
//! (VF, VM-pair, port…).

use crate::{bps, Nanos};
use std::collections::BTreeMap;

/// Accumulates byte deltas into fixed-width time bins.
#[derive(Debug, Clone)]
pub struct RateSeries {
    bin_ns: Nanos,
    bins: Vec<u64>,
}

impl RateSeries {
    /// Create a series with the given bin width in nanoseconds.
    ///
    /// # Panics
    /// Panics if `bin_ns == 0`.
    pub fn new(bin_ns: Nanos) -> Self {
        assert!(bin_ns > 0, "bin width must be positive");
        Self {
            bin_ns,
            bins: Vec::new(),
        }
    }

    /// Record `bytes` delivered at absolute time `now`.
    pub fn add(&mut self, now: Nanos, bytes: u64) {
        let idx = (now / self.bin_ns) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
    }

    /// Bin width in nanoseconds.
    pub fn bin_ns(&self) -> Nanos {
        self.bin_ns
    }

    /// Number of bins currently materialised.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no bytes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(|&b| b == 0)
    }

    /// Total bytes across all bins.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Rate (bits/sec) of bin `i` (0.0 past the end).
    pub fn rate_at(&self, i: usize) -> f64 {
        bps(self.bins.get(i).copied().unwrap_or(0), self.bin_ns)
    }

    /// Export `(bin_start_ns, rate_bps)` points for all bins up to `until`
    /// (exclusive), including trailing zero bins so plots show silence.
    pub fn points(&self, until: Nanos) -> Vec<(Nanos, f64)> {
        let n = (until / self.bin_ns) as usize;
        (0..n)
            .map(|i| (i as Nanos * self.bin_ns, self.rate_at(i)))
            .collect()
    }

    /// Average rate (bits/sec) over `[from, to)`.
    pub fn avg_rate(&self, from: Nanos, to: Nanos) -> f64 {
        if to <= from {
            return 0.0;
        }
        let b0 = (from / self.bin_ns) as usize;
        let b1 = ((to + self.bin_ns - 1) / self.bin_ns) as usize;
        let bytes: u64 = (b0..b1)
            .map(|i| self.bins.get(i).copied().unwrap_or(0))
            .sum();
        bps(bytes, to - from)
    }
}

/// A keyed collection of [`RateSeries`] sharing one bin width.
#[derive(Debug, Clone)]
pub struct SeriesSet<K: Ord + Clone> {
    bin_ns: Nanos,
    series: BTreeMap<K, RateSeries>,
}

impl<K: Ord + Clone> SeriesSet<K> {
    /// Create an empty set with the given bin width.
    pub fn new(bin_ns: Nanos) -> Self {
        Self {
            bin_ns,
            series: BTreeMap::new(),
        }
    }

    /// Record `bytes` for entity `key` at time `now`.
    pub fn add(&mut self, key: K, now: Nanos, bytes: u64) {
        self.series
            .entry(key)
            .or_insert_with(|| RateSeries::new(self.bin_ns))
            .add(now, bytes);
    }

    /// The series for `key`, if any bytes were recorded for it.
    pub fn get(&self, key: &K) -> Option<&RateSeries> {
        self.series.get(key)
    }

    /// Iterate over `(key, series)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &RateSeries)> {
        self.series.iter()
    }

    /// All keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.series.keys()
    }

    /// Number of entities tracked.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no entity has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MS;

    #[test]
    fn bins_accumulate() {
        let mut s = RateSeries::new(MS);
        s.add(0, 1000);
        s.add(MS - 1, 1000);
        s.add(MS, 500);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 2500);
        // 2000 bytes in 1 ms = 16 Mbps.
        assert!((s.rate_at(0) - 16e6).abs() < 1.0);
        assert!((s.rate_at(1) - 4e6).abs() < 1.0);
        assert_eq!(s.rate_at(99), 0.0);
    }

    #[test]
    fn points_include_trailing_zeros() {
        let mut s = RateSeries::new(MS);
        s.add(0, 100);
        let pts = s.points(5 * MS);
        assert_eq!(pts.len(), 5);
        assert!(pts[4].1 == 0.0);
        assert_eq!(pts[3].0, 3 * MS);
    }

    #[test]
    fn avg_rate_window() {
        let mut s = RateSeries::new(MS);
        for i in 0..10u64 {
            s.add(i * MS, 125_000); // 1 Gbps per bin
        }
        let r = s.avg_rate(0, 10 * MS);
        assert!((r - 1e9).abs() / 1e9 < 1e-9);
        assert_eq!(s.avg_rate(5 * MS, 5 * MS), 0.0);
    }

    #[test]
    fn series_set_keys() {
        let mut set: SeriesSet<u32> = SeriesSet::new(MS);
        set.add(2, 0, 10);
        set.add(1, 0, 20);
        set.add(2, MS, 30);
        let keys: Vec<_> = set.keys().copied().collect();
        assert_eq!(keys, vec![1, 2]);
        assert_eq!(set.get(&2).unwrap().total_bytes(), 40);
        assert!(set.get(&3).is_none());
    }
}
