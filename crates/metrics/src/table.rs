//! Plain-text tables and CSV emission for the `repro` harness.
//!
//! The harness prints each figure/table of the paper as rows on stdout and
//! mirrors them into `results/*.csv`. We keep this hand-rolled (a few dozen
//! lines) instead of pulling a serialisation dependency.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table that can also serialise to CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a column-aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quote cells containing `,`/`"`/newline).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Format a nanosecond quantity as a human-readable latency string.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// Format a bits/sec quantity as Mbps/Gbps.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2}Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.1}Mbps", bps / 1e6)
    } else {
        format!("{:.0}Kbps", bps / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["k", "v"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_file() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let dir = std::env::temp_dir().join("ufab-metrics-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn human_units() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(24_000.0), "24.0us");
        assert_eq!(fmt_ns(2_200_000.0), "2.20ms");
        assert_eq!(fmt_bps(10e9), "10.00Gbps");
        assert_eq!(fmt_bps(500e6), "500.0Mbps");
    }
}
