//! Streaming statistics, exact percentiles, and CDF export.

/// Streaming first/second-moment accumulator (Welford's algorithm).
///
/// Used wherever the paper reports mean ± stddev (e.g. Fig 17c FCT slowdown
/// with standard deviation) without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile calculator over retained samples.
///
/// The evaluation cares about extreme tails (P99, P99.9 in Fig 1b, Fig 4,
/// Fig 12b), so we keep every sample and sort on demand rather than using a
/// sketch. Experiment sample counts stay in the low millions, which is fine.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Create an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile with `p` in `[0, 100]` using nearest-rank
    /// interpolation. Returns `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (P50).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Minimum sample.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Export an empirical CDF with at most `points` evenly spaced knots.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 0 {
            return Cdf { points: Vec::new() };
        }
        let points = points.max(2).min(n.max(2));
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let q = i as f64 / (points - 1) as f64;
            let idx = ((n - 1) as f64 * q).round() as usize;
            out.push((self.samples[idx], q));
        }
        Cdf { points: out }
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merge another collection into this one.
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// An empirical CDF: `(value, cumulative_fraction)` knots, value-sorted.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// `(value, fraction ≤ value)` pairs in ascending value order.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// The smallest value at which the CDF reaches `q` (0..1), or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(_, f)| *f >= q)
            .or(self.points.last())
            .map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_empty() {
        let mut a = OnlineStats::new();
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut c = OnlineStats::new();
        let mut d = OnlineStats::new();
        d.add(3.0);
        c.merge(&d);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn percentiles_exact() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.add(i as f64);
        }
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        let med = p.median().unwrap();
        assert!((med - 50.5).abs() < 1e-9);
        let p99 = p.percentile(99.0).unwrap();
        assert!((p99 - 99.01).abs() < 0.02, "p99={p99}");
    }

    #[test]
    fn percentiles_single_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(50.0), None);
        p.add(7.5);
        assert_eq!(p.percentile(10.0), Some(7.5));
        assert_eq!(p.percentile(99.9), Some(7.5));
    }

    #[test]
    fn cdf_quantile() {
        let mut p = Percentiles::new();
        for i in 0..1000 {
            p.add(i as f64);
        }
        let cdf = p.cdf(101);
        let q50 = cdf.quantile(0.5).unwrap();
        assert!((q50 - 500.0).abs() < 15.0, "q50={q50}");
        assert!(cdf.quantile(1.0).unwrap() >= 990.0);
    }

    #[test]
    fn percentiles_merge() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        for i in 0..50 {
            a.add(i as f64);
        }
        for i in 50..100 {
            b.add(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.max(), Some(99.0));
    }
}
