//! Vendored, offline subset of the `criterion` 0.5 API.
//!
//! The build environment for this repository cannot reach a cargo
//! registry, so the workspace vendors the slice of criterion it uses:
//! `Criterion::{benchmark_group, bench_function}`, `BenchmarkGroup::
//! {sample_size, bench_function, finish}`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros. Statistics are minimal
//! (median over N samples after geometric warm-up calibration); there
//! are no plots, baselines or regression reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive the per-iteration setup output is to keep alive.
/// Only affects upstream's batching heuristics; accepted and ignored
/// here (every iteration gets a fresh setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. a whole simulator).
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh un-timed `setup` product per
    /// iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count geometrically until one
    // sample takes long enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4).min(1 << 24);
    }
    let mut per_iter: Vec<f64> = (0..sample_size.max(5))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{id:<40} time: [{} {} {}]  ({} iters/sample)",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        iters
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
