//! Configuration, per-test RNG and case outcome types.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration; only `cases` is honoured by this subset.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must accumulate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; the case is re-drawn.
    Reject(&'static str),
    /// `prop_assert!`/`prop_assert_eq!` failed; the test panics.
    Fail(String),
}

/// Deterministic generator driving strategy sampling. Seeded from the
/// test name so each property gets an independent but reproducible
/// stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: SmallRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
