//! Vendored, offline subset of the `proptest` 1.x API.
//!
//! The build environment for this repository cannot reach a cargo
//! registry, so the workspace vendors the slice of proptest it uses:
//! the `proptest!` macro, `Strategy` (ranges, tuples, `prop_map`,
//! `any`), `prop::collection::{vec, hash_set}`, `prop::sample::select`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! `ProptestConfig::with_cases`. Unlike upstream there is no shrinking:
//! a failing case reports the case index and deterministic per-test
//! seed instead of a minimised input.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works as upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Entry macro: a block of `#[test] fn name(arg in strategy, ..) { .. }`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each test item in the `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            while ran < config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 * config.cases + 1024,
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), ran, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), left, right,
                )));
        }
    }};
}

/// Discard the current case (does not count as a failure) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
