//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size for generated collections (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        Self { lo, hi }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from
/// `size`. If the element domain is too small to reach the target the
/// set saturates at whatever distinct values were drawn (bounded
/// retries), matching upstream's best-effort behaviour.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < 16 * n + 64 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
