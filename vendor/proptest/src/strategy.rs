//! The `Strategy` trait and primitive strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::distributions::{Distribution, Standard};
use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike upstream there is no value tree / shrinking: `sample` draws a
/// single concrete value from the given RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy generating any value of `T` (uniform over the type's
/// domain, via the `Standard` distribution).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generate any value of `T`.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5));
