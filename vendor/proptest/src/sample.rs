//! Sampling from explicit value lists.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly pick one of the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select() needs at least one value");
    Select { values }
}

/// Output of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}
