//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the (small) slice of `rand` it actually uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, `gen`, `gen_bool` and
//! `gen_range` over integer and float ranges. Distribution quality matches
//! what the simulator needs (uniform, deterministic, fast); it is *not* a
//! cryptographic or statistically audited generator.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draw a single sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_samples_and_bools() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut heads = 0;
        for _ in 0..2000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            if r.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((800..1200).contains(&heads), "biased: {heads}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
