//! The `Standard` distribution for primitive types.

use crate::{unit_f64, RngCore};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full integer domain,
/// uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
