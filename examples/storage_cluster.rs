//! A storage cluster on a predictable fabric (the paper's EBS scenario).
//!
//! Three cooperating task classes — Storage Agents writing 64 KB blocks,
//! Block Agents replicating them 3-way, and a Garbage-Collection loop —
//! each run as their own VF with its own guarantee (SA 2 G, BA 6 G,
//! GC 1 G). Prints the task-completion-time distribution against the
//! paper's 10 G latency bound (2 ms average, 10 ms tail).
//!
//! ```sh
//! cargo run --release --example storage_cluster
//! ```

use experiments::harness::{Runner, SystemKind, SLICE};
use netsim::MS;
use topology::TestbedCfg;
use ufab::FabricSpec;
use workloads::driver::Driver;
use workloads::ebs::{EbsCfg, EbsDriver, EbsSpec};

fn main() {
    let topo = topology::testbed(TestbedCfg::default());
    let h = topo.hosts.clone();
    let mut fabric = FabricSpec::new(500e6);
    let sa_t = fabric.add_tenant("SA", 4.0);
    let ba_t = fabric.add_tenant("BA", 12.0);
    let gc_t = fabric.add_tenant("GC", 2.0);
    let sa_vms: Vec<_> = (0..4).map(|i| fabric.add_vm(sa_t, h[i])).collect();
    let ba_vms: Vec<_> = (0..4).map(|i| fabric.add_vm(ba_t, h[4 + i])).collect();
    let cs_vms: Vec<_> = (0..4).map(|i| fabric.add_vm(ba_t, h[4 + i])).collect();
    let gcs_vms: Vec<_> = (0..4).map(|i| fabric.add_vm(gc_t, h[4 + i])).collect();
    let cs_gc: Vec<_> = (0..4).map(|i| fabric.add_vm(gc_t, h[4 + i])).collect();

    let mut sa = Vec::new();
    for &s in &sa_vms {
        let host = fabric.vm(s).host;
        let pairs: Vec<_> = ba_vms.iter().map(|&b| fabric.add_pair(s, b)).collect();
        sa.push((host, pairs));
    }
    let mut ba = Vec::new();
    for &b in &ba_vms {
        let host = fabric.vm(b).host;
        let remote: Vec<_> = cs_vms
            .iter()
            .copied()
            .filter(|&c| fabric.vm(c).host != host)
            .collect();
        let pairs: Vec<_> = remote.iter().map(|&c| fabric.add_pair(b, c)).collect();
        ba.push((host, pairs));
    }
    let mut gc = Vec::new();
    for &g in &gcs_vms {
        let host = fabric.vm(g).host;
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for &c in &cs_gc {
            if fabric.vm(c).host == host {
                continue;
            }
            let (req, _) = fabric.add_pair_bidir(g, c);
            reads.push(req);
            writes.push(fabric.add_pair(g, c));
        }
        gc.push((host, reads, writes));
    }

    let mut r = Runner::new(topo, fabric, SystemKind::Ufab, 11, None, MS);
    let mut driver = EbsDriver::new(EbsSpec { sa, ba, gc }, EbsCfg::default(), 11, 1 << 40);
    driver.until = 50 * MS;
    let mut drivers: [&mut dyn Driver; 1] = [&mut driver];
    r.run(60 * MS, SLICE, &mut drivers);

    println!("EBS on uFAB — task completion times (bound: avg ≤ 2 ms, tail ≤ 10 ms)\n");
    println!("{:<8} {:>9} {:>9} {:>6}", "task", "avg_ms", "p99_ms", "n");
    for (name, stats) in [
        ("SA", &mut driver.sa_tct.clone()),
        ("BA", &mut driver.ba_tct.clone()),
        ("Total", &mut driver.total_tct.clone()),
        ("GC", &mut driver.gc_tct.clone()),
    ] {
        if stats.is_empty() {
            continue;
        }
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>6}",
            name,
            stats.mean() / 1e6,
            stats.percentile(99.0).unwrap() / 1e6,
            stats.count()
        );
    }
    println!("\ncompleted storage tasks: {}", driver.tasks_completed());
}
