//! Compare μFAB against the paper's baselines on one scenario.
//!
//! Runs the same staggered-join permutation (three guarantee classes, the
//! Fig 11 pattern) under all four systems — μFAB, μFAB′,
//! PicNIC′+WCC+Clove, ElasticSwitch+Clove — and prints each system's
//! bandwidth-dissatisfaction ratio, aggregate throughput and queue tail.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use experiments::harness::{Runner, SystemKind, SLICE};
use metrics::DissatisfactionMeter;
use netsim::{NodeId, PairId, Time, MS};
use topology::TestbedCfg;
use ufab::FabricSpec;
use workloads::driver::Driver;
use workloads::patterns::BulkDriver;

fn build() -> (topology::Topo, FabricSpec, Vec<(Time, NodeId, PairId, u64)>) {
    let topo = topology::testbed(TestbedCfg::default());
    let mut fabric = FabricSpec::new(500e6);
    let mut vfs = Vec::new();
    let classes = [(1u64, 2.0), (2, 4.0), (5, 10.0)];
    let mut k = 0;
    for hi in 0..4 {
        for &(gbps, tokens) in &classes {
            let t = fabric.add_tenant(&format!("{gbps}G-h{hi}"), tokens);
            let src = topo.hosts[hi];
            let v0 = fabric.add_vm(t, src);
            let v1 = fabric.add_vm(t, topo.hosts[4 + hi]);
            let pair = fabric.add_pair(v0, v1);
            vfs.push((MS + k * 4 * MS, src, pair, gbps * 1_000_000_000));
            k += 1;
        }
    }
    (topo, fabric, vfs)
}

fn main() {
    println!("staggered permutation, classes 1/2/5 Gbps, one VF joins every 4 ms\n");
    println!(
        "{:<20} {:>12} {:>10} {:>10}",
        "system", "dissat_pct", "agg_gbps", "q_p99_kb"
    );
    for system in [
        SystemKind::Pwc,
        SystemKind::EsClove,
        SystemKind::UfabPrime,
        SystemKind::Ufab,
    ] {
        let (topo, fabric, vfs) = build();
        let until = 80 * MS;
        let mut r = Runner::new(topo, fabric, system, 5, None, MS);
        r.watch_all_switch_queues();
        let jobs: Vec<_> = vfs
            .iter()
            .map(|&(at, src, pair, _)| (at, src, pair, 4_000_000_000u64, 0u32))
            .collect();
        let mut driver = BulkDriver::new(jobs, 0);
        let mut drivers: [&mut dyn Driver; 1] = [&mut driver];
        r.run(until, SLICE, &mut drivers);
        let rec = r.rec.borrow();
        let mut meter = DissatisfactionMeter::new();
        for b in 0..(until / MS) as usize {
            let t = b as Time * MS;
            let entries: Vec<(f64, f64, f64)> = vfs
                .iter()
                .filter(|&&(at, _, _, _)| t >= at)
                .map(|&(_, _, pair, guar)| {
                    let rate = rec
                        .pair_rates
                        .get(&pair.raw())
                        .map(|s| s.rate_at(b))
                        .unwrap_or(0.0);
                    (rate, guar as f64, f64::INFINITY)
                })
                .collect();
            meter.observe(t, MS, &entries);
        }
        let agg: f64 = vfs
            .iter()
            .map(|&(_, _, p, _)| {
                rec.pair_rates
                    .get(&p.raw())
                    .map(|s| s.avg_rate(until - 10 * MS, until))
                    .unwrap_or(0.0)
            })
            .sum();
        drop(rec);
        let mut q = r.queue_samples.clone();
        println!(
            "{:<20} {:>12.2} {:>10.2} {:>10.1}",
            system.label(),
            meter.ratio() * 100.0,
            agg / 1e9,
            q.percentile(99.0).unwrap_or(0.0) / 1e3
        );
    }
    println!("\nuFAB should show the lowest dissatisfaction at full aggregate and a ~10x smaller queue tail.");
}
