//! Quickstart: two tenants with different guarantees share a bottleneck.
//!
//! Builds a dumbbell fabric, installs μFAB on every host and switch, gives
//! tenant A a 1 Gbps guarantee and tenant B a 4 Gbps guarantee, starts both
//! with unlimited demand, and shows that the 10 G bottleneck is split
//! 1:4 — minimum bandwidth guarantee with work conservation, converging in
//! well under a millisecond.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netsim::{Simulator, MS};
use std::rc::Rc;
use ufab::endpoint::AppMsg;
use ufab::{FabricSpec, UfabConfig, UfabCore, UfabEdge};

fn main() {
    // 1. A topology: two hosts each side of a single 10 G bottleneck.
    let mut topo = topology::dumbbell(2, 10, 10);
    topo.install_ecmp();

    // 2. The virtual fabric: one token = 500 Mbps (B_u).
    let mut fabric = FabricSpec::new(500e6);
    let tenant_a = fabric.add_tenant("tenant-a", 2.0); // 1 Gbps hose / VM
    let tenant_b = fabric.add_tenant("tenant-b", 8.0); // 4 Gbps hose / VM
    let a_src = fabric.add_vm(tenant_a, topo.hosts[0]);
    let a_dst = fabric.add_vm(tenant_a, topo.hosts[2]);
    let b_src = fabric.add_vm(tenant_b, topo.hosts[1]);
    let b_dst = fabric.add_vm(tenant_b, topo.hosts[3]);
    let pair_a = fabric.add_pair(a_src, a_dst);
    let pair_b = fabric.add_pair(b_src, b_dst);

    // 3. Agents: μFAB-E on every host, μFAB-C on every switch.
    let cfg = UfabConfig::default();
    let rec = metrics::recorder::shared(MS);
    let hosts = topo.hosts.clone();
    let switches: Vec<_> = topo.tors.clone();
    let net = topo.take_network();
    let topo = Rc::new(topo);
    let fabric = Rc::new(fabric);
    let mut sim = Simulator::new(net, 42);
    for &h in &hosts {
        sim.set_edge_agent(
            h,
            Box::new(UfabEdge::new(
                cfg.clone(),
                Rc::clone(&topo),
                Rc::clone(&fabric),
                Rc::clone(&rec),
                h,
            )),
        );
    }
    for &s in &switches {
        sim.set_switch_agent(
            s,
            Box::new(UfabCore::new(cfg.bloom_bytes, cfg.core_cleanup_period)),
        );
    }

    // 4. Both tenants offer unlimited demand from t = 0.
    sim.start();
    sim.inject(hosts[0], AppMsg::oneway(1, pair_a, 500_000_000, 0));
    sim.inject(hosts[1], AppMsg::oneway(2, pair_b, 500_000_000, 0));

    // 5. Watch the allocation converge.
    println!("time_ms  tenant-a_gbps  tenant-b_gbps   (guarantees 1 : 4)");
    for ms in 1..=20u64 {
        sim.run_until(ms * MS);
        let r = rec.borrow();
        let rate = |p: netsim::PairId| {
            r.pair_rates
                .get(&p.raw())
                .map(|s| s.rate_at(ms as usize - 1))
                .unwrap_or(0.0)
                / 1e9
        };
        println!("{ms:>7}  {:>13.2}  {:>13.2}", rate(pair_a), rate(pair_b));
    }
    let r = rec.borrow();
    let ra = r
        .pair_rates
        .get(&pair_a.raw())
        .unwrap()
        .avg_rate(10 * MS, 20 * MS);
    let rb = r
        .pair_rates
        .get(&pair_b.raw())
        .unwrap()
        .avg_rate(10 * MS, 20 * MS);
    println!(
        "\nsteady state: tenant-a {:.2} Gbps, tenant-b {:.2} Gbps",
        ra / 1e9,
        rb / 1e9
    );
    println!(
        "ratio {:.2} (ideal 4.0), total {:.2} Gbps of the 9.5 Gbps target",
        rb / ra,
        (ra + rb) / 1e9
    );
    assert!(
        (rb / ra - 4.0).abs() < 1.0,
        "shares should be ≈ token-proportional"
    );
}
