//! Incast with bounded tail latency (the paper's Case-1 / Fig 4).
//!
//! 14 VFs with 500 Mbps guarantees start transmitting to the same host at
//! the same instant on the paper's 8-server testbed. Runs the experiment
//! twice — μFAB with the §3.4 two-stage admission and the μFAB′ ablation
//! without it — and prints the RTT distribution of each: the two-stage
//! admission is what turns "fast convergence" into "bounded tail".
//!
//! ```sh
//! cargo run --release --example incast_latency
//! ```

use experiments::harness::{Runner, SystemKind, SLICE};
use netsim::{NodeId, PairId, Time, MS};
use topology::TestbedCfg;
use ufab::FabricSpec;
use workloads::driver::Driver;
use workloads::patterns::BulkDriver;

fn run_one(system: SystemKind) -> (f64, f64, f64) {
    let topo = topology::testbed(TestbedCfg::default());
    let dst = *topo.hosts.last().unwrap();
    let mut fabric = FabricSpec::new(500e6);
    let mut jobs: Vec<(Time, NodeId, PairId, u64, u32)> = Vec::new();
    for i in 0..14 {
        let t = fabric.add_tenant(&format!("vf{i}"), 1.0); // 500 Mbps
        let src = topo.hosts[i % 7];
        let v0 = fabric.add_vm(t, src);
        let v1 = fabric.add_vm(t, dst);
        let pair = fabric.add_pair(v0, v1);
        jobs.push((MS, src, pair, 20_000_000, 0));
    }
    let mut runner = Runner::new(topo, fabric, system, 7, None, MS);
    let mut driver = BulkDriver::new(jobs, 0);
    let mut drivers: [&mut dyn Driver; 1] = [&mut driver];
    runner.run(30 * MS, SLICE, &mut drivers);
    let mut rtts = runner.rec.borrow_mut().rtts.clone();
    (
        rtts.median().unwrap_or(f64::NAN) / 1e3,
        rtts.percentile(99.9).unwrap_or(f64::NAN) / 1e3,
        rtts.max().unwrap_or(f64::NAN) / 1e3,
    )
}

fn main() {
    println!("14-to-1 incast, synchronized start, 500 Mbps guarantees\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "system", "p50_us", "p99.9_us", "max_us"
    );
    for system in [SystemKind::UfabPrime, SystemKind::Ufab] {
        let (p50, p999, max) = run_one(system);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1}",
            system.label(),
            p50,
            p999,
            max
        );
    }
    println!("\nThe bounded-latency stage (uFAB vs uFAB') caps the worst case:");
    println!("§3.4 bounds inflight traffic to 3 BDP, so RTT ≤ ~4 baseRTT (~96 us here).");
}
