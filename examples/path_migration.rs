//! Subscription-aware path migration (the paper's Case-2 / Fig 5).
//!
//! Three VFs occupy the three paths of the Case-2 graph with deliberately
//! mismatched subscription vs. utilisation. A fourth VF with a 3 Gbps
//! guarantee joins late. A utilisation-directed load balancer would send
//! it to P1 (least utilised, most subscribed) and break VF-1's guarantee;
//! μFAB's telemetry shows the *subscription* Φ_l, so F4 lands on the only
//! path whose links satisfy C ≥ (Φ+φ)·B_u, and every guarantee holds.
//!
//! ```sh
//! cargo run --release --example path_migration
//! ```

use experiments::harness::{Runner, SystemKind, SLICE};
use netsim::MS;
use ufab::{FabricSpec, UfabEdge};
use workloads::driver::Driver;
use workloads::patterns::{BulkDriver, OnOffDriver};

fn main() {
    let topo = topology::case2(10);
    let mut fabric = FabricSpec::new(500e6);
    // Guarantees: F1 = 9 G, F2 = 8 G, F3 = 4 G, F4 = 3 G.
    let tokens = [18.0, 16.0, 8.0, 6.0];
    let mut pairs = Vec::new();
    let mut hosts = Vec::new();
    for (i, &tok) in tokens.iter().enumerate() {
        let t = fabric.add_tenant(&format!("VF-{}", i + 1), tok);
        let src = topo.hosts[i];
        let v0 = fabric.add_vm(t, src);
        let v1 = fabric.add_vm(t, topo.hosts[4 + i]);
        pairs.push(fabric.add_pair(v0, v1));
        hosts.push(src);
    }
    let mut r = Runner::new(topo, fabric, SystemKind::Ufab, 3, None, MS);
    // F1 paced at 8 G (under its 9 G guarantee), F2 paced at 9 G,
    // F3 unlimited, F4 joins at 25 ms with unlimited demand.
    let mut f1 = OnOffDriver::new(vec![(hosts[0], pairs[0])], 1_000_000 * MS, 8e9, 1 << 40);
    let mut f2 = OnOffDriver::new(vec![(hosts[1], pairs[1])], 1_000_000 * MS, 9e9, 2 << 40);
    let mut f3 = BulkDriver::new(
        vec![(2 * MS, hosts[2], pairs[2], 2_000_000_000, 0)],
        3 << 40,
    );
    let mut f4 = BulkDriver::new(
        vec![(25 * MS, hosts[3], pairs[3], 2_000_000_000, 0)],
        4 << 40,
    );
    let mut drivers: [&mut dyn Driver; 4] = [&mut f1, &mut f2, &mut f3, &mut f4];
    r.run(50 * MS, SLICE, &mut drivers);

    println!("rates after F4 joined (averaged over the last 20 ms):\n");
    println!(
        "{:<6} {:>14} {:>12} {:>10}",
        "VF", "guarantee_gbps", "rate_gbps", "met"
    );
    let guars: [f64; 4] = [9.0, 8.0, 4.0, 3.0];
    let demands = [8.0, 9.0, f64::INFINITY, f64::INFINITY];
    for (i, &p) in pairs.iter().enumerate() {
        let rate = r.pair_rate(p, 30 * MS, 50 * MS) / 1e9;
        let entitled = guars[i].min(demands[i]);
        println!(
            "{:<6} {:>14.1} {:>12.2} {:>10}",
            format!("VF-{}", i + 1),
            guars[i],
            rate,
            rate >= 0.85 * entitled
        );
    }
    let migrations = r.rec.borrow().path_migrations;
    let f4_route = r.sim.edge::<UfabEdge>(hosts[3]).route_of(pairs[3]);
    println!("\npath migrations performed: {migrations}");
    println!("F4's final route (egress port per hop): {f4_route:?}");
    println!("F4 settled on the only path with spare *subscription*, not the least-utilised one.");
}
