//! Flight recorder demo: trace the quickstart scenario, dump the
//! retained event window as JSONL, and show the determinism digest.
//!
//! ```sh
//! cargo run --release --example flight_recorder
//! ```

use experiments::harness::{Runner, SystemKind};
use netsim::MS;
use obs::{arm_panic_dump, Category, CategoryMask};
use ufab::endpoint::AppMsg;
use ufab::FabricSpec;

fn main() {
    // The quickstart fabric: two tenants across a dumbbell bottleneck.
    let topo = topology::dumbbell(2, 10, 10);
    let mut fabric = FabricSpec::new(500e6);
    let ta = fabric.add_tenant("tenant-a", 2.0);
    let tb = fabric.add_tenant("tenant-b", 8.0);
    let a0 = fabric.add_vm(ta, topo.hosts[0]);
    let a1 = fabric.add_vm(ta, topo.hosts[2]);
    let b0 = fabric.add_vm(tb, topo.hosts[1]);
    let b1 = fabric.add_vm(tb, topo.hosts[3]);
    let pa = fabric.add_pair(a0, a1);
    let pb = fabric.add_pair(b0, b1);
    let h0 = topo.hosts[0];
    let h1 = topo.hosts[1];

    let mut r = Runner::new(topo, fabric, SystemKind::Ufab, 42, None, MS);
    // Keep only the control-plane categories: window updates, register
    // deltas, migrations, drops — the packet categories would dominate
    // a small ring.
    r.enable_trace(256);
    if let Some(rec) = r.obs.recorder() {
        rec.borrow_mut().set_mask(CategoryMask::of(&[
            Category::Window,
            Category::Register,
            Category::Migration,
            Category::Drop,
            Category::Link,
        ]));
    }
    // Post-mortem: if this process panics, the ring is dumped here.
    arm_panic_dump(
        &r.obs,
        std::env::temp_dir().join("flight-recorder-panic.jsonl"),
    );

    r.sim.start();
    r.sim.inject(h0, AppMsg::oneway(1, pa, 50_000_000, 0));
    r.sim.inject(h1, AppMsg::oneway(2, pb, 50_000_000, 0));
    r.sim.run_until(2 * MS);

    let rec = r.obs.recorder().expect("tracing enabled");
    let rec = rec.borrow();
    println!(
        "recorded {} events total, retaining the newest {} (capacity {}, {} overwritten)",
        rec.total_recorded(),
        rec.len(),
        rec.capacity(),
        rec.overwritten()
    );
    println!("\nlast 5 events as JSONL:");
    for ev in rec.last(5) {
        println!("{}", ev.to_json());
    }
    let path = std::env::temp_dir().join("flight-recorder-demo.jsonl");
    rec.dump_to_path(&path).expect("dump");
    println!("\nfull window dumped to {}", path.display());
    println!(
        "determinism digest: {:016x}",
        r.sim.det_digest().expect("digest runs with tracing")
    );
}
