//! Umbrella crate for the μFAB reproduction.
//!
//! Re-exports every workspace crate so examples and downstream users can
//! depend on a single package:
//!
//! ```
//! use ufab_repro::ufab;
//! let cfg = ufab::UfabConfig::default();
//! assert!(cfg.target_utilization > 0.9);
//! ```

pub use baselines;
pub use experiments;
pub use fabric;
pub use fabricd;
pub use metrics;
pub use netsim;
pub use telemetry;
pub use topology;
pub use ufab;
pub use workloads;
